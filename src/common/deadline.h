// Deadlines and cooperative cancellation.
//
// A pf::Deadline is a value type wrapping a steady_clock time point (or
// "infinite" — the default). Requests carry one through RequestOptions /
// Submit; long-running analysis loops (power ladder, dedup scans, variable
// elimination) call CheckDeadline() at bounded checkpoints and return
// Status::DeadlineExceeded instead of blocking a ticket forever.
//
// Propagation is via a thread-local "current deadline" installed by the
// RAII DeadlineScope. ThreadPool::ParallelFor re-installs the caller's
// deadline inside worker threads, so checkpoints deep in parallel kernels
// see the same deadline as the submitting thread without every call chain
// having to thread a Deadline parameter through.
#ifndef PUFFERFISH_COMMON_DEADLINE_H_
#define PUFFERFISH_COMMON_DEADLINE_H_

#include <chrono>
#include <cstdint>

#include "common/status.h"

namespace pf {

/// \brief A point in time after which a request should give up.
///
/// Value type, cheap to copy. Default-constructed deadlines are infinite
/// (never expire), so plumbing one through an API is free for callers that
/// don't care.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Infinite deadline: never expires.
  Deadline() = default;

  /// Deadline `ms` milliseconds from now (clamped at 0).
  static Deadline After(std::int64_t ms) {
    Deadline d;
    d.when_ = Clock::now() + std::chrono::milliseconds(ms < 0 ? 0 : ms);
    d.infinite_ = false;
    return d;
  }

  /// Deadline at an absolute steady_clock time point.
  static Deadline At(Clock::time_point when) {
    Deadline d;
    d.when_ = when;
    d.infinite_ = false;
    return d;
  }

  /// A deadline that is already expired (useful in tests).
  static Deadline Expired() { return After(0); }

  /// Infinite deadline, spelled explicitly.
  static Deadline Infinite() { return Deadline(); }

  bool infinite() const { return infinite_; }

  /// True iff the deadline has passed. Infinite deadlines never expire.
  bool expired() const { return !infinite_ && Clock::now() >= when_; }

  /// Milliseconds remaining; 0 if expired, a large sentinel if infinite.
  std::int64_t remaining_ms() const {
    if (infinite_) return kInfiniteMs;
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    when_ - Clock::now())
                    .count();
    return left < 0 ? 0 : left;
  }

  static constexpr std::int64_t kInfiniteMs = INT64_C(0x7fffffffffffffff);

 private:
  Clock::time_point when_{};
  bool infinite_ = true;
};

/// Returns the deadline currently installed on this thread (infinite if
/// none). See DeadlineScope.
const Deadline& CurrentDeadline();

/// \brief RAII guard installing `deadline` as this thread's current
/// deadline; restores the previous one on destruction (scopes nest — the
/// innermost deadline wins, which is correct because an enclosing request
/// re-checks its own deadline after the nested scope unwinds).
class DeadlineScope {
 public:
  explicit DeadlineScope(const Deadline& deadline);
  ~DeadlineScope();

  DeadlineScope(const DeadlineScope&) = delete;
  DeadlineScope& operator=(const DeadlineScope&) = delete;

 private:
  Deadline saved_;
};

/// \brief Cooperative cancellation checkpoint: returns
/// Status::DeadlineExceeded naming `what` if this thread's current deadline
/// has expired, OK otherwise. Cheap when no deadline is installed (one
/// thread-local bool test, no clock read).
Status CheckDeadline(const char* what);

}  // namespace pf

#endif  // PUFFERFISH_COMMON_DEADLINE_H_
