#include "common/failpoint.h"

namespace pf {
namespace {

// SplitMix64 step — the same generator the library uses for seeding
// elsewhere; one independent stream per armed site.
std::uint64_t SplitMix64Next(std::uint64_t& state) {
  std::uint64_t z = (state += UINT64_C(0x9E3779B97F4A7C15));
  z = (z ^ (z >> 30)) * UINT64_C(0xBF58476D1CE4E5B9);
  z = (z ^ (z >> 27)) * UINT64_C(0x94D049BB133111EB);
  return z ^ (z >> 31);
}

// Uniform double in [0, 1) from the top 53 bits.
double ToUnitDouble(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

FailpointRegistry& FailpointRegistry::Instance() {
  // Leaked on purpose: sites may be evaluated during static destruction of
  // other translation units, so the registry must never be destroyed. The
  // constructor is private, which rules out make_unique.
  static FailpointRegistry* registry =
      new FailpointRegistry();  // pf:allow(naked-new-delete): leaked
                                // process-lifetime singleton, private ctor.
  return *registry;
}

FailpointRegistry::Site& FailpointRegistry::SiteLocked(
    const std::string& name) {
  return sites_[name];
}

void FailpointRegistry::Arm(const std::string& name) {
  MutexLock lock(mu_);
  Site& s = SiteLocked(name);
  s.mode = Mode::kAlways;
}

void FailpointRegistry::ArmOnce(const std::string& name) {
  MutexLock lock(mu_);
  Site& s = SiteLocked(name);
  s.mode = Mode::kOnce;
}

void FailpointRegistry::ArmAfter(const std::string& name, std::uint64_t n) {
  MutexLock lock(mu_);
  Site& s = SiteLocked(name);
  s.mode = Mode::kAfter;
  s.after = n;
}

void FailpointRegistry::ArmProbability(const std::string& name, double p,
                                       std::uint64_t seed) {
  MutexLock lock(mu_);
  Site& s = SiteLocked(name);
  s.mode = Mode::kProbability;
  s.probability = p;
  s.rng = seed;
}

void FailpointRegistry::Disarm(const std::string& name) {
  MutexLock lock(mu_);
  auto it = sites_.find(name);
  if (it != sites_.end()) it->second.mode = Mode::kOff;
}

void FailpointRegistry::DisarmAll() {
  MutexLock lock(mu_);
  for (auto& [name, site] : sites_) {
    site.mode = Mode::kOff;
    site.after = 0;
    site.probability = 0.0;
    site.hits = 0;
    site.fires = 0;
  }
}

std::vector<std::string> FailpointRegistry::Registered() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(sites_.size());
  for (const auto& [name, site] : sites_) names.push_back(name);
  return names;
}

std::uint64_t FailpointRegistry::Hits(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = sites_.find(name);
  return it == sites_.end() ? 0 : it->second.hits;
}

std::uint64_t FailpointRegistry::Fires(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = sites_.find(name);
  return it == sites_.end() ? 0 : it->second.fires;
}

Status FailpointRegistry::Evaluate(const std::string& name) {
  MutexLock lock(mu_);
  Site& s = SiteLocked(name);  // Registers the site on first evaluation.
  ++s.hits;
  bool fire = false;
  switch (s.mode) {
    case Mode::kOff:
      break;
    case Mode::kAlways:
      fire = true;
      break;
    case Mode::kOnce:
      fire = true;
      s.mode = Mode::kOff;
      break;
    case Mode::kAfter:
      if (s.after > 0) {
        --s.after;
      } else {
        fire = true;
      }
      break;
    case Mode::kProbability:
      fire = ToUnitDouble(SplitMix64Next(s.rng)) < s.probability;
      break;
  }
  if (!fire) return Status::OK();
  ++s.fires;
  return Status::Internal("failpoint " + name + " fired");
}

}  // namespace pf
