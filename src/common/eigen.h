// Eigenvalue routines: Jacobi rotations for symmetric matrices and power
// iteration for spectral norms. Used to compute eigengaps of Markov chains
// (Lemma 4.8 / Eq. (7) of the paper) and the GK16 spectral-norm condition.
#ifndef PUFFERFISH_COMMON_EIGEN_H_
#define PUFFERFISH_COMMON_EIGEN_H_

#include "common/matrix.h"
#include "common/status.h"

namespace pf {

/// \brief All eigenvalues of a symmetric matrix via the cyclic Jacobi method.
///
/// Returns eigenvalues sorted in descending order. Fails with
/// InvalidArgument if the matrix is not square or not symmetric (within
/// `symmetry_tol`), and NumericalError if the sweep fails to converge.
Result<Vector> SymmetricEigenvalues(const Matrix& m, double symmetry_tol = 1e-8,
                                    int max_sweeps = 100);

/// \brief Largest absolute eigenvalue (spectral radius) by power iteration.
///
/// Works on general square matrices with a dominant eigenvalue. `iters`
/// iterations of normalized multiplication starting from an all-ones vector
/// (deterministic so results are reproducible).
Result<double> SpectralRadius(const Matrix& m, int iters = 2000, double tol = 1e-12);

/// \brief Spectral norm ||M||_2 = sqrt(lambda_max(M^T M)) by power iteration.
Result<double> SpectralNorm(const Matrix& m, int iters = 2000, double tol = 1e-12);

}  // namespace pf

#endif  // PUFFERFISH_COMMON_EIGEN_H_
