// Named, seeded failpoints for deterministic fault injection in tests.
//
// A failpoint is a named site on a fallible path:
//
//   Status PlanStore::Save(...) {
//     PF_FAILPOINT("plan_store.write");   // may return an injected error
//     ...
//   }
//
// In normal builds the macro compiles to nothing — zero code, zero branch.
// Configured with -DPF_FAILPOINTS=ON (the CI `failpoints` leg), each site
// registers itself in a process-wide registry on first evaluation, and
// tests arm sites by name:
//
//   FailpointRegistry::Instance().ArmOnce("plan_store.write");      // fire 1x
//   FailpointRegistry::Instance().ArmAfter("plan_store.write", 3);  // skip 3
//   FailpointRegistry::Instance().ArmProbability("...", 0.5, seed); // p=0.5
//
// Armed sites return Status::Internal("failpoint <name> fired"), which the
// host function propagates like any real failure — so the sweep test can
// enumerate Registered() and prove every site yields a typed non-OK Status
// with no crash, leak, or race (the registry is thread-safe; probability
// mode uses its own seeded SplitMix64 stream, never global RNG state).
//
// Arming a name before its site has ever executed is fine: Arm creates the
// entry, the site attaches on first evaluation. The registry is modeled on
// the fail-rs / RocksDB SyncPoint idiom.
#ifndef PUFFERFISH_COMMON_FAILPOINT_H_
#define PUFFERFISH_COMMON_FAILPOINT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace pf {

/// True when this build compiles failpoint sites (-DPF_FAILPOINTS=ON).
/// Tests that require injection skip themselves when this is false.
#ifdef PF_FAILPOINTS
inline constexpr bool kFailpointsEnabled = true;
#else
inline constexpr bool kFailpointsEnabled = false;
#endif

/// \brief Process-wide registry of failpoint sites. Thread-safe; all
/// state (arming config, hit/fire counters, RNG stream) lives under one
/// mutex — failpoints sit on failure paths, never on hot loops.
class FailpointRegistry {
 public:
  static FailpointRegistry& Instance();

  /// Fire on every evaluation until disarmed.
  void Arm(const std::string& name);
  /// Fire exactly once, then auto-disarm.
  void ArmOnce(const std::string& name);
  /// Skip the next `n` evaluations, then fire on every one after.
  void ArmAfter(const std::string& name, std::uint64_t n);
  /// Fire each evaluation independently with probability `p`, driven by a
  /// SplitMix64 stream seeded with `seed` (deterministic given the
  /// sequence of evaluations; the global RNG discipline is untouched).
  void ArmProbability(const std::string& name, double p, std::uint64_t seed);

  /// Stop `name` from firing (counters and registration are kept).
  void Disarm(const std::string& name);
  /// Disarm every site and reset all counters. Tests call this in
  /// SetUp/TearDown so armings never leak across test cases.
  void DisarmAll();

  /// Names of every site that has registered (been evaluated) or been
  /// armed, sorted — the sweep test's work list.
  std::vector<std::string> Registered() const;

  /// Times the site was evaluated / times it actually fired.
  std::uint64_t Hits(const std::string& name) const;
  std::uint64_t Fires(const std::string& name) const;

  /// The call PF_FAILPOINT expands to. Registers `name` on first use;
  /// returns an injected error iff the site is armed and its mode says
  /// fire, OK otherwise.
  Status Evaluate(const std::string& name);

 private:
  FailpointRegistry() = default;

  enum class Mode { kOff, kAlways, kOnce, kAfter, kProbability };

  struct Site {
    Mode mode = Mode::kOff;
    std::uint64_t after = 0;    // remaining skips in kAfter mode
    double probability = 0.0;   // kProbability
    std::uint64_t rng = 0;      // SplitMix64 state, kProbability
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
  };

  Site& SiteLocked(const std::string& name) PF_REQUIRES(mu_);

  mutable Mutex mu_;
  // std::map keeps Registered() sorted for free and iterators stable.
  std::map<std::string, Site> sites_ PF_GUARDED_BY(mu_);
};

}  // namespace pf

/// \brief Failpoint site: in PF_FAILPOINTS builds, evaluates the named
/// site and returns the injected Status from the enclosing function if it
/// fires; otherwise (and in all normal builds) does nothing. Use only in
/// functions returning Status or Result<T> (the injected Status converts).
#ifdef PF_FAILPOINTS
#define PF_FAILPOINT(name)                                                  \
  do {                                                                      \
    ::pf::Status _fp_st = ::pf::FailpointRegistry::Instance().Evaluate(name); \
    if (!_fp_st.ok()) return _fp_st;                                        \
  } while (0)
#else
#define PF_FAILPOINT(name) \
  do {                     \
  } while (0)
#endif

#endif  // PUFFERFISH_COMMON_FAILPOINT_H_
