#include "common/record_batch.h"

namespace pf {

RecordBatch RecordBatch::Make(std::size_t rows, std::size_t total_values) {
  RecordBatch batch;
  batch.rows_ = rows;
  batch.total_values_ = total_values;
  // One arena block typically covers every column: size the first block to
  // the whole batch so steady-state batches of a stable shape cost zero
  // block allocations after the first.
  const std::size_t bytes = total_values * sizeof(double)        // values
                            + (rows + 1) * sizeof(std::size_t)   // offsets
                            + 3 * rows * sizeof(double)          // meta
                            + rows * sizeof(std::uint64_t)       // tickets
                            + 16 * 8;                            // alignment
  batch.arena_ = std::make_unique<Arena>(bytes < (1u << 12) ? (1u << 12)
                                                            : bytes);
  Arena* a = batch.arena_.get();
  batch.values_ = a->AllocDoubles(total_values);
  batch.offsets_ = static_cast<std::size_t*>(
      a->Allocate((rows + 1) * sizeof(std::size_t)));
  batch.epsilons_ = a->AllocDoubles(rows);
  batch.sigmas_ = a->AllocDoubles(rows);
  batch.noise_scales_ = a->AllocDoubles(rows);
  batch.tickets_ = static_cast<std::uint64_t*>(
      a->Allocate(rows * sizeof(std::uint64_t)));
  batch.offsets_[0] = 0;
  batch.offsets_[rows] = total_values;
  return batch;
}

}  // namespace pf
