// Status and Result<T>: lightweight error propagation in the style of
// Apache Arrow / RocksDB. No exceptions cross the public API boundary.
#ifndef PUFFERFISH_COMMON_STATUS_H_
#define PUFFERFISH_COMMON_STATUS_H_

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace pf {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kFailedPrecondition,
  kResourceExhausted,
  kNumericalError,
  kNotSupported,
  kInternal,
  /// A deadline attached to the request expired before the operation
  /// finished; cooperative checkpoints in the analysis loops return this
  /// instead of blocking a ticket forever (see common/deadline.h).
  kDeadlineExceeded,
  /// The service refused the request under overload (queue full, cold
  /// analysis shed); transient by design — the caller should retry after
  /// load drops, unlike kResourceExhausted (a spent privacy budget, which
  /// never recovers).
  kUnavailable,
};

/// \brief Outcome of a fallible operation: either OK or a code plus message.
///
/// Mirrors the Arrow/RocksDB idiom: functions that can fail return a Status
/// (or a Result<T>, below) instead of throwing. Statuses are cheap to copy
/// when OK (empty message).
///
/// [[nodiscard]] on the class makes EVERY function returning a Status by
/// value warn when the caller drops it (-Werror=unused-result build-wide):
/// an ignored Status is a swallowed failure. The rare call site that
/// legitimately does not care (e.g. best-effort cleanup) says so with an
/// explicit `(void)` cast and a comment.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  /// Returns an OK status.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable rendering, e.g. "InvalidArgument: epsilon must be > 0".
  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + msg_;
  }

  /// \brief Same code, with `context` prepended to the message — the
  /// cause-chaining idiom for nested failures. A load error surfacing
  /// through cache and engine reads
  /// "warm-restart load: plan snapshot: checksum mismatch", so one message
  /// carries the whole path from symptom to root cause. No-op on OK.
  Status WithContext(const std::string& context) const {
    if (ok()) return *this;
    return Status(code_, context + ": " + msg_);
  }

  static std::string CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kFailedPrecondition: return "FailedPrecondition";
      case StatusCode::kResourceExhausted: return "ResourceExhausted";
      case StatusCode::kNumericalError: return "NumericalError";
      case StatusCode::kNotSupported: return "NotSupported";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
      case StatusCode::kUnavailable: return "Unavailable";
    }
    return "Unknown";
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Either a value of type T or an error Status.
///
/// Usage:
/// \code
///   Result<Matrix> m = Matrix::Identity(3).Inverse();
///   if (!m.ok()) return m.status();
///   Use(m.value());
/// \endcode
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// \brief Implicit construction from an error status. Constructing from an
  /// OK status is a caller bug; the Result is normalized to an Internal
  /// error so ok() and status() stay consistent in every build mode.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status without a value");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// The contained value; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// \brief Returns the value or aborts with the error message (use in
  /// tests/tools). Aborts in *all* build modes: under NDEBUG an assert
  /// would compile away and dereference an empty optional (UB).
  const T& ValueOrDie() const& {
    if (!ok()) DieOnError();
    return *value_;
  }
  T&& ValueOrDie() && {
    if (!ok()) DieOnError();
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` if this holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  [[noreturn]] void DieOnError() const {
    std::fprintf(stderr, "ValueOrDie on error Result: %s\n",
                 status_.ToString().c_str());
    // pf:allow(no-abort): ValueOrDie's documented contract IS to abort;
    // the value-or-die rule already keeps it out of library serving paths.
    std::abort();  // pf:allow(no-abort)
  }

  std::optional<T> value_;
  Status status_;
};

/// Propagates an error status from an expression returning Status.
#define PF_RETURN_NOT_OK(expr)                 \
  do {                                         \
    ::pf::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                 \
  } while (0)

/// Assigns a Result's value to `lhs` or propagates its error status.
#define PF_ASSIGN_OR_RETURN(lhs, rexpr)        \
  auto PF_CONCAT_(res_, __LINE__) = (rexpr);   \
  if (!PF_CONCAT_(res_, __LINE__).ok())        \
    return PF_CONCAT_(res_, __LINE__).status();\
  lhs = std::move(PF_CONCAT_(res_, __LINE__)).value()

#define PF_CONCAT_INNER_(a, b) a##b
#define PF_CONCAT_(a, b) PF_CONCAT_INNER_(a, b)

}  // namespace pf

#endif  // PUFFERFISH_COMMON_STATUS_H_
