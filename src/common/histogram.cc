#include "common/histogram.h"

#include <algorithm>

namespace pf {

Result<Vector> CountHistogram(const StateSequence& seq, std::size_t k) {
  Vector h(k, 0.0);
  for (int s : seq) {
    if (s < 0 || static_cast<std::size_t>(s) >= k) {
      return Status::OutOfRange("state outside [0, k) in CountHistogram");
    }
    h[static_cast<std::size_t>(s)] += 1.0;
  }
  return h;
}

Result<Vector> RelativeFrequencyHistogram(const StateSequence& seq, std::size_t k) {
  if (seq.empty()) {
    return Status::InvalidArgument("empty sequence in RelativeFrequencyHistogram");
  }
  PF_ASSIGN_OR_RETURN(Vector h, CountHistogram(seq, k));
  const double inv = 1.0 / static_cast<double>(seq.size());
  for (double& v : h) v *= inv;
  return h;
}

Result<Vector> AggregateRelativeFrequencyHistogram(
    const std::vector<StateSequence>& seqs, std::size_t k) {
  std::size_t total = 0;
  Vector h(k, 0.0);
  for (const auto& seq : seqs) {
    PF_ASSIGN_OR_RETURN(Vector counts, CountHistogram(seq, k));
    h = Add(h, counts);
    total += seq.size();
  }
  if (total == 0) {
    return Status::InvalidArgument("no observations in aggregate histogram");
  }
  const double inv = 1.0 / static_cast<double>(total);
  for (double& v : h) v *= inv;
  return h;
}

Vector ClampToUnit(const Vector& h) {
  Vector out = h;
  for (double& v : out) v = std::clamp(v, 0.0, 1.0);
  return out;
}

}  // namespace pf
