// Histogram utilities for discrete state sequences: counts, relative
// frequencies, and aggregation across individuals. These are the query
// payloads released by the mechanisms in the paper's evaluation (Section 5).
#ifndef PUFFERFISH_COMMON_HISTOGRAM_H_
#define PUFFERFISH_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <vector>

#include "common/matrix.h"
#include "common/status.h"

namespace pf {

/// A discrete state sequence; values must lie in [0, num_states).
using StateSequence = std::vector<int>;

/// Raw counts of each state in `seq` over a state space of size k.
/// Fails if any state is outside [0, k).
Result<Vector> CountHistogram(const StateSequence& seq, std::size_t k);

/// \brief Relative frequency histogram: counts divided by sequence length.
///
/// This is the query released in all of the paper's experiments ("to ensure
/// that results across different chain lengths are comparable, we release a
/// private relative frequency histogram"). It is (2/T)-Lipschitz in L1.
Result<Vector> RelativeFrequencyHistogram(const StateSequence& seq, std::size_t k);

/// \brief Pooled relative-frequency histogram over several sequences
/// (the paper's "aggregate task": one histogram over all of a group's
/// observations). Lipschitz constant is 2 / (total observations).
Result<Vector> AggregateRelativeFrequencyHistogram(
    const std::vector<StateSequence>& seqs, std::size_t k);

/// Clamps histogram entries to [0, 1] (postprocessing of noisy releases;
/// postprocessing preserves Pufferfish privacy).
Vector ClampToUnit(const Vector& h);

}  // namespace pf

#endif  // PUFFERFISH_COMMON_HISTOGRAM_H_
