// Columnar record batches for batch-at-a-time serving: one buffer layer
// carrying many query values per column instead of one heap object per
// query. A RecordBatch is a struct-of-arrays over `rows` released queries:
//
//   values   flat double buffer; row i's values are
//            values[offsets[i] .. offsets[i+1])  (Arrow-style list layout,
//            so scalar rows and k-bin histogram rows share one buffer)
//   offsets  rows + 1 monotone indices into values
//   epsilon / sigma / noise_scale / ticket   per-row accounting columns
//
// Every column lives in one arena (common/arena.h): building a batch costs
// O(log(bytes)) block mallocs the first time and zero once blocks are
// retained, and dropping it frees everything at once — no per-row
// allocation or destruction on the serving hot path. The arena never runs
// destructors, which is exactly right here: every column is POD.
//
// A RecordBatch owns its arena, so it is movable (futures can carry it out
// of the executor) but not copyable.
#ifndef PUFFERFISH_COMMON_RECORD_BATCH_H_
#define PUFFERFISH_COMMON_RECORD_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/arena.h"
#include "common/matrix.h"

namespace pf {

/// \brief Struct-of-arrays buffer over `rows` released query values.
class RecordBatch {
 public:
  /// An empty batch (no rows, no storage).
  RecordBatch() = default;

  RecordBatch(RecordBatch&&) = default;
  RecordBatch& operator=(RecordBatch&&) = default;
  RecordBatch(const RecordBatch&) = delete;
  RecordBatch& operator=(const RecordBatch&) = delete;

  /// \brief Allocates a batch of `rows` rows holding `total_values` values
  /// across all rows. Columns are uninitialized except offsets[0] = 0 and
  /// offsets[rows] = total_values; the builder (the batch executor) fills
  /// the interior offsets, values, and meta columns.
  static RecordBatch Make(std::size_t rows, std::size_t total_values);

  std::size_t num_rows() const { return rows_; }
  /// Total values across all rows (the flat buffer's length).
  std::size_t num_values() const { return total_values_; }
  bool empty() const { return rows_ == 0; }

  /// Flat value buffer (kernels write truth here, then add noise in
  /// place).
  double* values() { return values_; }
  const double* values() const { return values_; }

  /// rows + 1 monotone offsets into values().
  std::size_t* offsets() { return offsets_; }
  const std::size_t* offsets() const { return offsets_; }

  /// Per-row epsilon the release was charged at.
  double* epsilons() { return epsilons_; }
  const double* epsilons() const { return epsilons_; }

  /// Per-row plan noise multiplier sigma.
  double* sigmas() { return sigmas_; }
  const double* sigmas() const { return sigmas_; }

  /// Per-row Laplace scale actually applied (lipschitz * sigma — the clip
  /// kernel's output).
  double* noise_scales() { return noise_scales_; }
  const double* noise_scales() const { return noise_scales_; }

  /// Per-row submission ticket (also the noise-stream index).
  std::uint64_t* tickets() { return tickets_; }
  const std::uint64_t* tickets() const { return tickets_; }

  /// Number of values in row `i`.
  std::size_t row_size(std::size_t i) const {
    return offsets_[i + 1] - offsets_[i];
  }
  /// Pointer to row i's first value.
  const double* row(std::size_t i) const { return values_ + offsets_[i]; }
  double* row(std::size_t i) { return values_ + offsets_[i]; }

  /// Row i's values as an owned Vector (convenience for callers comparing
  /// against the scalar ReleaseResult path; the columnar accessors above
  /// are the zero-copy route).
  Vector RowVector(std::size_t i) const {
    return Vector(row(i), row(i) + row_size(i));
  }

  /// Bytes the batch's arena holds (capacity, not just in-use).
  std::size_t retained_bytes() const {
    return arena_ == nullptr ? 0 : arena_->retained_bytes();
  }

 private:
  std::unique_ptr<Arena> arena_;
  std::size_t rows_ = 0;
  std::size_t total_values_ = 0;
  double* values_ = nullptr;
  std::size_t* offsets_ = nullptr;
  double* epsilons_ = nullptr;
  double* sigmas_ = nullptr;
  double* noise_scales_ = nullptr;
  std::uint64_t* tickets_ = nullptr;
};

}  // namespace pf

#endif  // PUFFERFISH_COMMON_RECORD_BATCH_H_
