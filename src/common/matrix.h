// Dense row-major matrix and vector math used throughout the library:
// products, powers, linear solves, and stochastic-matrix helpers.
#ifndef PUFFERFISH_COMMON_MATRIX_H_
#define PUFFERFISH_COMMON_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/status.h"

namespace pf {

class ThreadPool;

/// A column vector of doubles.
using Vector = std::vector<double>;

/// \brief Dense row-major matrix of doubles.
///
/// Sized for the problems in this library (state spaces k <= a few hundred):
/// O(n^3) algorithms (LU, Jacobi eigensolver) are used deliberately for
/// robustness and zero dependencies.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  /// Creates a rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  /// Creates a matrix from nested initializer lists (rows of equal length).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Identity matrix of size n.
  static Matrix Identity(std::size_t n);
  /// Matrix with `diag` on the diagonal, zero elsewhere.
  static Matrix Diagonal(const Vector& diag);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Pointer to the first entry of row `r` (rows are contiguous).
  double* RowPtr(std::size_t r) { return data_.data() + r * cols_; }
  const double* RowPtr(std::size_t r) const { return data_.data() + r * cols_; }

  /// Row `r` as a vector copy.
  Vector Row(std::size_t r) const;
  /// Column `c` as a vector copy.
  Vector Col(std::size_t c) const;

  Matrix Transpose() const;
  Matrix operator*(const Matrix& other) const;
  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix operator*(double scalar) const;

  /// Matrix-vector product (this * v).
  Vector Apply(const Vector& v) const;
  /// Vector-matrix product (v^T * this), returned as a vector.
  Vector ApplyLeft(const Vector& v) const;

  /// This matrix raised to integer power p >= 0 by repeated squaring.
  Matrix Power(unsigned p) const;

  /// Solves A x = b by Gaussian elimination with partial pivoting.
  /// Fails with NumericalError if A is (numerically) singular.
  Result<Vector> Solve(const Vector& b) const;

  /// Matrix inverse via Gauss-Jordan; NumericalError if singular.
  Result<Matrix> Inverse() const;

  /// Max absolute entry (infinity norm of the flattened matrix).
  double MaxAbs() const;
  /// True if every entry is finite.
  bool AllFinite() const;

  /// True if all entries are >= -tol and every row sums to 1 within tol.
  bool IsRowStochastic(double tol = 1e-9) const;

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ && data_ == other.data_;
  }

 private:
  std::size_t rows_, cols_;
  std::vector<double> data_;
};

/// \brief Reference O(mnk) product (i,k,j loop order, zero-skip on the
/// left operand). Ground truth for the blocked kernel's tests; not used on
/// hot paths.
Matrix MultiplyNaive(const Matrix& lhs, const Matrix& rhs);

/// \brief Cache-conscious product with a transposed right-hand side: rhs
/// is transposed once so the micro-kernel reduces contiguous row pairs,
/// and the column dimension is walked in 4-wide panels (independent
/// accumulators, FMA/SIMD friendly; all five streams are contiguous).
///
/// Each output entry accumulates its k-terms in ascending order into a
/// single accumulator — the same order as the naive kernel — so for finite
/// inputs the result equals MultiplyNaive entrywise (and bit-identically
/// for matrices without negative-zero products, e.g. stochastic matrices
/// and their powers). Used by operator*, Power and ParallelMultiply.
Matrix MultiplyBlocked(const Matrix& lhs, const Matrix& rhs);

/// \brief Row-parallel blocked product: output rows fan out across `pool`
/// (inline when pool is null or the problem is too small to amortize a
/// wake-up). Bit-identical to MultiplyBlocked for every thread count: rows
/// are independent and each is computed by the same kernel.
Matrix ParallelMultiply(const Matrix& lhs, const Matrix& rhs,
                        ThreadPool* pool);

/// Elementwise helpers on vectors. All require matching sizes.
double Dot(const Vector& a, const Vector& b);
Vector Add(const Vector& a, const Vector& b);
Vector Subtract(const Vector& a, const Vector& b);
Vector Scale(const Vector& a, double s);
/// L1 norm: sum of absolute values.
double NormL1(const Vector& a);
/// L2 (Euclidean) norm.
double NormL2(const Vector& a);
/// Infinity norm: max absolute value.
double NormInf(const Vector& a);
/// L1 distance between two equal-length vectors.
double DistanceL1(const Vector& a, const Vector& b);

/// True if entries are nonnegative (>= -tol) and sum to 1 within tol.
bool IsProbabilityVector(const Vector& v, double tol = 1e-9);

}  // namespace pf

#endif  // PUFFERFISH_COMMON_MATRIX_H_
