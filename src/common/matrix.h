// Dense row-major matrix and vector math used throughout the library:
// products, powers, linear solves, and stochastic-matrix helpers.
#ifndef PUFFERFISH_COMMON_MATRIX_H_
#define PUFFERFISH_COMMON_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/status.h"

namespace pf {

class ThreadPool;

/// A column vector of doubles.
using Vector = std::vector<double>;

/// \brief Dense row-major matrix of doubles.
///
/// Sized for the problems in this library (state spaces k <= a few hundred):
/// O(n^3) algorithms (LU, Jacobi eigensolver) are used deliberately for
/// robustness and zero dependencies.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  /// Creates a rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  /// Creates a matrix from nested initializer lists (rows of equal length).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Identity matrix of size n.
  static Matrix Identity(std::size_t n);
  /// Matrix with `diag` on the diagonal, zero elsewhere.
  static Matrix Diagonal(const Vector& diag);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Pointer to the first entry of row `r` (rows are contiguous).
  double* RowPtr(std::size_t r) { return data_.data() + r * cols_; }
  const double* RowPtr(std::size_t r) const { return data_.data() + r * cols_; }

  /// \brief Reshapes to rows x cols, reusing capacity; entry values are
  /// unspecified afterwards. For Into-style kernels that overwrite every
  /// cell — lets a retained output matrix be reused without a zero-fill or
  /// a reallocation.
  void ResizeUninitialized(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  /// Row `r` as a vector copy.
  Vector Row(std::size_t r) const;
  /// Column `c` as a vector copy.
  Vector Col(std::size_t c) const;

  Matrix Transpose() const;
  Matrix operator*(const Matrix& other) const;
  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix operator*(double scalar) const;

  /// Matrix-vector product (this * v).
  Vector Apply(const Vector& v) const;
  /// Vector-matrix product (v^T * this), returned as a vector.
  Vector ApplyLeft(const Vector& v) const;
  /// ApplyLeft writing into a caller-retained vector (capacity reused; no
  /// allocation once out has seen this width). out must not alias v.
  void ApplyLeftInto(const Vector& v, Vector* out) const;

  /// This matrix raised to integer power p >= 0 by repeated squaring.
  Matrix Power(unsigned p) const;

  /// Solves A x = b by Gaussian elimination with partial pivoting.
  /// Fails with NumericalError if A is (numerically) singular.
  Result<Vector> Solve(const Vector& b) const;

  /// Matrix inverse via Gauss-Jordan; NumericalError if singular.
  Result<Matrix> Inverse() const;

  /// Max absolute entry (infinity norm of the flattened matrix).
  double MaxAbs() const;
  /// True if every entry is finite.
  bool AllFinite() const;

  /// True if all entries are >= -tol and every row sums to 1 within tol.
  bool IsRowStochastic(double tol = 1e-9) const;

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ && data_ == other.data_;
  }

 private:
  std::size_t rows_, cols_;
  std::vector<double> data_;
};

/// \brief Instruction set the blocked product kernels dispatch to. The
/// portable kernel is always available; kAvx2 is an explicitly vectorized
/// 4-wide double kernel selected at runtime when the CPU supports it.
enum class SimdLevel {
  kPortable,
  kAvx2,
};

/// Human-readable level name ("portable", "avx2").
const char* SimdLevelName(SimdLevel level);

/// Highest level this CPU supports (probed once per process).
SimdLevel DetectedSimdLevel();

/// \brief Level the kernels currently use: the detected level unless
/// overridden by SetSimdLevel. Every level computes bit-identical results
/// (see the summation-order note on MultiplyBlocked), so the override
/// exists for benchmarks and tests comparing the paths, not correctness.
SimdLevel ActiveSimdLevel();

/// \brief Overrides the dispatch level, clamped to DetectedSimdLevel()
/// (requesting kAvx2 on a non-AVX2 CPU leaves the portable kernel active).
/// Process-wide; not meant to be flipped concurrently with in-flight
/// multiplies.
void SetSimdLevel(SimdLevel level);

/// \brief Reference O(mnk) product (i,k,j loop order, zero-skip on the
/// left operand). Ground truth for the blocked kernel's tests; not used on
/// hot paths.
Matrix MultiplyNaive(const Matrix& lhs, const Matrix& rhs);

/// \brief Cache-conscious product, runtime-dispatched over SimdLevel. The
/// portable kernel transposes rhs once and reduces contiguous row pairs in
/// 4-wide column panels (independent scalar accumulators); the AVX2 kernel
/// reads rhs untransposed, broadcasting one lhs entry against 4-wide
/// column vectors of rhs rows (no FMA — the library builds with
/// -ffp-contract=off so mul+add never fuses).
///
/// Summation-order policy: EVERY level accumulates each output entry's
/// k-terms in ascending order into a single (scalar or lane) accumulator —
/// the same order as the naive kernel — so no dispatch choice ever
/// reassociates a sum. For finite inputs the result equals MultiplyNaive
/// entrywise, bit-identically for matrices without negative-zero products
/// (e.g. stochastic matrices and their powers), which the tests pin. Used
/// by operator*, Power and ParallelMultiply.
Matrix MultiplyBlocked(const Matrix& lhs, const Matrix& rhs);

/// \brief MultiplyBlocked writing into a caller-retained output (resized,
/// capacity reused — no allocation once out has seen this shape). out must
/// not alias lhs or rhs. Scratch (the portable kernel's transpose) lives
/// in a thread-local buffer, so a warm thread performs zero heap
/// allocations here.
void MultiplyBlockedInto(const Matrix& lhs, const Matrix& rhs, Matrix* out);

/// \brief Row-parallel blocked product: output rows fan out across `pool`
/// (inline when pool is null or the problem is too small to amortize a
/// wake-up). Bit-identical to MultiplyBlocked for every thread count: rows
/// are independent and each is computed by the same kernel.
Matrix ParallelMultiply(const Matrix& lhs, const Matrix& rhs,
                        ThreadPool* pool);

/// ParallelMultiply writing into a caller-retained output (see
/// MultiplyBlockedInto for the aliasing and allocation rules).
void ParallelMultiplyInto(const Matrix& lhs, const Matrix& rhs,
                          ThreadPool* pool, Matrix* out);

/// Elementwise helpers on vectors. All require matching sizes.
double Dot(const Vector& a, const Vector& b);
Vector Add(const Vector& a, const Vector& b);
Vector Subtract(const Vector& a, const Vector& b);
Vector Scale(const Vector& a, double s);
/// L1 norm: sum of absolute values.
double NormL1(const Vector& a);
/// L2 (Euclidean) norm.
double NormL2(const Vector& a);
/// Infinity norm: max absolute value.
double NormInf(const Vector& a);
/// L1 distance between two equal-length vectors.
double DistanceL1(const Vector& a, const Vector& b);

/// True if entries are nonnegative (>= -tol) and sum to 1 within tol.
bool IsProbabilityVector(const Vector& v, double tol = 1e-9);

}  // namespace pf

#endif  // PUFFERFISH_COMMON_MATRIX_H_
