#include "common/eigen.h"

#include <algorithm>
#include <cmath>

namespace pf {

Result<Vector> SymmetricEigenvalues(const Matrix& m, double symmetry_tol,
                                    int max_sweeps) {
  if (m.rows() != m.cols()) {
    return Status::InvalidArgument("SymmetricEigenvalues requires square matrix");
  }
  const std::size_t n = m.rows();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (std::fabs(m(i, j) - m(j, i)) > symmetry_tol) {
        return Status::InvalidArgument("matrix is not symmetric");
      }
    }
  }
  Matrix a = m;
  // Symmetrize exactly to avoid drift.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double avg = 0.5 * (a(i, j) + a(j, i));
      a(i, j) = a(j, i) = avg;
    }
  }
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) off += a(i, j) * a(i, j);
    if (off < 1e-24) {
      Vector eig(n);
      for (std::size_t i = 0; i < n; ++i) eig[i] = a(i, i);
      std::sort(eig.begin(), eig.end(), std::greater<double>());
      return eig;
    }
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        if (std::fabs(a(p, q)) < 1e-18) continue;
        const double app = a(p, p), aqq = a(q, q), apq = a(p, q);
        const double theta = 0.5 * (aqq - app) / apq;
        // Stable rotation parameter t = sign(theta) / (|theta| + sqrt(theta^2+1)).
        double t;
        if (std::fabs(theta) > 1e12) {
          t = 0.5 / theta;
        } else {
          t = ((theta >= 0) ? 1.0 : -1.0) /
              (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        }
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply rotation J(p, q, theta) on both sides.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p), akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k), aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
      }
    }
  }
  return Status::NumericalError("Jacobi eigensolver failed to converge");
}

Result<double> SpectralRadius(const Matrix& m, int iters, double tol) {
  if (m.rows() != m.cols()) {
    return Status::InvalidArgument("SpectralRadius requires square matrix");
  }
  const std::size_t n = m.rows();
  if (n == 0) return Status::InvalidArgument("empty matrix");
  Vector v(n, 1.0);
  double lambda = 0.0;
  for (int it = 0; it < iters; ++it) {
    Vector w = m.Apply(v);
    const double norm = NormL2(w);
    if (norm < 1e-300) return 0.0;  // Nilpotent-ish; radius ~ 0.
    for (double& x : w) x /= norm;
    const double new_lambda = Dot(w, m.Apply(w)) / Dot(w, w);
    if (it > 5 && std::fabs(new_lambda - lambda) < tol) {
      return std::fabs(new_lambda);
    }
    lambda = new_lambda;
    v = std::move(w);
  }
  return std::fabs(lambda);
}

Result<double> SpectralNorm(const Matrix& m, int iters, double tol) {
  const Matrix mtm = m.Transpose() * m;
  PF_ASSIGN_OR_RETURN(double lambda, SpectralRadius(mtm, iters, tol));
  return std::sqrt(std::max(0.0, lambda));
}

}  // namespace pf
