#include "common/matrix.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>

#include "common/parallel.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PF_SIMD_X86 1
#include <immintrin.h>
#endif

namespace pf {

namespace {

// Writes rows [row_begin, row_end) of lhs * rhs into out, given rhs_t =
// rhs^T. The micro-kernel reduces one lhs row against a 4-wide panel of
// rhs^T rows — five contiguous streams, one shared lhs load per step,
// four independent accumulators (FMA/SIMD friendly). Each out(i, j) sums
// its k-terms in ascending order into a single accumulator, exactly like
// the naive kernel, so no reassociation ever changes results. (No k-tiling:
// order-preserving accumulation pins the traversal order anyway, and the
// library's matrices cap at 64 states, so the five streams sit in L1.)
void MultiplyRowsBlocked(const Matrix& lhs, const Matrix& rhs_t,
                         std::size_t row_begin, std::size_t row_end,
                         Matrix* out) {
  const std::size_t inner = lhs.cols();
  const std::size_t cols = rhs_t.rows();
  for (std::size_t r = row_begin; r < row_end; ++r) {
    const double* a = lhs.RowPtr(r);
    double* o = out->RowPtr(r);
    std::size_t j = 0;
    for (; j + 4 <= cols; j += 4) {
      const double* b0 = rhs_t.RowPtr(j);
      const double* b1 = rhs_t.RowPtr(j + 1);
      const double* b2 = rhs_t.RowPtr(j + 2);
      const double* b3 = rhs_t.RowPtr(j + 3);
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      for (std::size_t k = 0; k < inner; ++k) {
        const double l = a[k];
        s0 += l * b0[k];
        s1 += l * b1[k];
        s2 += l * b2[k];
        s3 += l * b3[k];
      }
      o[j] = s0;
      o[j + 1] = s1;
      o[j + 2] = s2;
      o[j + 3] = s3;
    }
    for (; j < cols; ++j) {
      const double* b = rhs_t.RowPtr(j);
      double s = 0.0;
      for (std::size_t k = 0; k < inner; ++k) s += a[k] * b[k];
      o[j] = s;
    }
  }
}

#ifdef PF_SIMD_X86
// AVX2 kernel: rhs is read UNtransposed — for a 4-wide (or 16-wide
// unrolled) panel of output columns, step k broadcasts lhs(r, k) and
// multiplies it against the contiguous 4-double slices of rhs row k. Each
// output lane keeps its own accumulator and sums its k-terms in ascending
// order, exactly like the naive/portable kernels, so the result is
// bit-identical to them (no horizontal reductions, no reassociation; mul
// and add stay separate instructions — the build pins -ffp-contract=off).
// The 16-column main loop gives four independent add chains to hide FP-add
// latency, matching the portable kernel's ILP at 4x the width.
__attribute__((target("avx2"))) void MultiplyRowsAvx2(
    const Matrix& lhs, const Matrix& rhs, std::size_t row_begin,
    std::size_t row_end, Matrix* out) {
  const std::size_t inner = lhs.cols();
  const std::size_t cols = rhs.cols();
  for (std::size_t r = row_begin; r < row_end; ++r) {
    const double* a = lhs.RowPtr(r);
    double* o = out->RowPtr(r);
    std::size_t j = 0;
    for (; j + 16 <= cols; j += 16) {
      __m256d acc0 = _mm256_setzero_pd();
      __m256d acc1 = _mm256_setzero_pd();
      __m256d acc2 = _mm256_setzero_pd();
      __m256d acc3 = _mm256_setzero_pd();
      for (std::size_t k = 0; k < inner; ++k) {
        const __m256d l = _mm256_set1_pd(a[k]);
        const double* b = rhs.RowPtr(k) + j;
        acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(l, _mm256_loadu_pd(b)));
        acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(l, _mm256_loadu_pd(b + 4)));
        acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(l, _mm256_loadu_pd(b + 8)));
        acc3 = _mm256_add_pd(acc3, _mm256_mul_pd(l, _mm256_loadu_pd(b + 12)));
      }
      _mm256_storeu_pd(o + j, acc0);
      _mm256_storeu_pd(o + j + 4, acc1);
      _mm256_storeu_pd(o + j + 8, acc2);
      _mm256_storeu_pd(o + j + 12, acc3);
    }
    for (; j + 4 <= cols; j += 4) {
      __m256d acc = _mm256_setzero_pd();
      for (std::size_t k = 0; k < inner; ++k) {
        const __m256d l = _mm256_set1_pd(a[k]);
        acc = _mm256_add_pd(acc,
                            _mm256_mul_pd(l, _mm256_loadu_pd(rhs.RowPtr(k) + j)));
      }
      _mm256_storeu_pd(o + j, acc);
    }
    for (; j < cols; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < inner; ++k) s += a[k] * rhs(k, j);
      o[j] = s;
    }
  }
}
#endif  // PF_SIMD_X86

// The dispatch level: -1 = not yet resolved (lazily set to the detected
// level on first use).
std::atomic<int> g_simd_level{-1};

void TransposeInto(const Matrix& m, Matrix* out) {
  out->ResizeUninitialized(m.cols(), m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) (*out)(c, r) = m(r, c);
  }
}

// Shared core of the blocked products: dispatches rows [0, lhs.rows()) of
// lhs * rhs into out (which must already have the result shape), fanning
// out across `pool` when the problem is worth a wake-up. The portable
// path's transpose lives in a thread-local scratch matrix, so warm calls
// allocate nothing.
void MultiplyCore(const Matrix& lhs, const Matrix& rhs, ThreadPool* pool,
                  Matrix* out) {
  assert(lhs.cols() == rhs.rows());
  assert(out != &lhs && out != &rhs);
  const bool avx2 = ActiveSimdLevel() == SimdLevel::kAvx2;
  static thread_local Matrix rhs_t_scratch;
  const Matrix* rhs_t = nullptr;
  if (!avx2) {
    TransposeInto(rhs, &rhs_t_scratch);
    rhs_t = &rhs_t_scratch;
  }
  const auto run_rows = [&](std::size_t begin, std::size_t end) {
#ifdef PF_SIMD_X86
    if (avx2) {
      MultiplyRowsAvx2(lhs, rhs, begin, end, out);
      return;
    }
#endif
    MultiplyRowsBlocked(lhs, *rhs_t, begin, end, out);
  };
  // Fan out only when a row is worth a pool wake-up: small state spaces
  // (e.g. the binary Figure 4 chains) run the whole multiply inline.
  constexpr std::size_t kMinFlopsForPool = 1u << 15;
  if (pool != nullptr && lhs.rows() > 1 &&
      lhs.rows() * lhs.cols() * rhs.cols() >= kMinFlopsForPool) {
    pool->ParallelFor(lhs.rows(),
                      [&](std::size_t r) { run_rows(r, r + 1); });
  } else {
    run_rows(0, lhs.rows());
  }
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kPortable: return "portable";
    case SimdLevel::kAvx2: return "avx2";
  }
  return "unknown";
}

SimdLevel DetectedSimdLevel() {
#ifdef PF_SIMD_X86
  static const bool avx2 = __builtin_cpu_supports("avx2");
  return avx2 ? SimdLevel::kAvx2 : SimdLevel::kPortable;
#else
  return SimdLevel::kPortable;
#endif
}

SimdLevel ActiveSimdLevel() {
  int level = g_simd_level.load(std::memory_order_relaxed);
  if (level < 0) {
    level = static_cast<int>(DetectedSimdLevel());
    g_simd_level.store(level, std::memory_order_relaxed);
  }
  return static_cast<SimdLevel>(level);
}

void SetSimdLevel(SimdLevel level) {
  if (static_cast<int>(level) > static_cast<int>(DetectedSimdLevel())) {
    level = DetectedSimdLevel();
  }
  g_simd_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows.size() == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    assert(row.size() == cols_ && "ragged initializer list");
    for (double v : row) data_.push_back(v);
  }
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Diagonal(const Vector& diag) {
  Matrix m(diag.size(), diag.size(), 0.0);
  for (std::size_t i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

Vector Matrix::Row(std::size_t r) const {
  Vector out(cols_);
  for (std::size_t c = 0; c < cols_; ++c) out[c] = (*this)(r, c);
  return out;
}

Vector Matrix::Col(std::size_t c) const {
  Vector out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

Matrix Matrix::operator*(const Matrix& other) const {
  return MultiplyBlocked(*this, other);
}

Matrix MultiplyNaive(const Matrix& lhs, const Matrix& rhs) {
  assert(lhs.cols() == rhs.rows());
  Matrix out(lhs.rows(), rhs.cols(), 0.0);
  for (std::size_t i = 0; i < lhs.rows(); ++i) {
    for (std::size_t k = 0; k < lhs.cols(); ++k) {
      const double a = lhs(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols(); ++j) {
        out(i, j) += a * rhs(k, j);
      }
    }
  }
  return out;
}

Matrix MultiplyBlocked(const Matrix& lhs, const Matrix& rhs) {
  Matrix out(lhs.rows(), rhs.cols());
  MultiplyCore(lhs, rhs, nullptr, &out);
  return out;
}

void MultiplyBlockedInto(const Matrix& lhs, const Matrix& rhs, Matrix* out) {
  out->ResizeUninitialized(lhs.rows(), rhs.cols());
  MultiplyCore(lhs, rhs, nullptr, out);
}

Matrix ParallelMultiply(const Matrix& lhs, const Matrix& rhs,
                        ThreadPool* pool) {
  Matrix out(lhs.rows(), rhs.cols());
  MultiplyCore(lhs, rhs, pool, &out);
  return out;
}

void ParallelMultiplyInto(const Matrix& lhs, const Matrix& rhs,
                          ThreadPool* pool, Matrix* out) {
  out->ResizeUninitialized(lhs.rows(), rhs.cols());
  MultiplyCore(lhs, rhs, pool, out);
}

Matrix Matrix::operator+(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix Matrix::operator*(double scalar) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= scalar;
  return out;
}

Vector Matrix::Apply(const Vector& v) const {
  assert(v.size() == cols_);
  Vector out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out[r] += (*this)(r, c) * v[c];
  return out;
}

Vector Matrix::ApplyLeft(const Vector& v) const {
  Vector out;
  ApplyLeftInto(v, &out);
  return out;
}

void Matrix::ApplyLeftInto(const Vector& v, Vector* out) const {
  assert(v.size() == rows_);
  assert(out != &v);
  out->assign(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double a = v[r];
    if (a == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) (*out)[c] += a * (*this)(r, c);
  }
}

Matrix Matrix::Power(unsigned p) const {
  assert(rows_ == cols_);
  Matrix result = Identity(rows_);
  Matrix base = *this;
  while (p > 0) {
    if (p & 1u) result = result * base;
    base = base * base;
    p >>= 1u;
  }
  return result;
}

Result<Vector> Matrix::Solve(const Vector& b) const {
  if (rows_ != cols_ || b.size() != rows_) {
    return Status::InvalidArgument("Solve requires square A and matching b");
  }
  const std::size_t n = rows_;
  // Augmented copy.
  Matrix a = *this;
  Vector x = b;
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a(r, col)) > std::fabs(a(pivot, col))) pivot = r;
    }
    if (std::fabs(a(pivot, col)) < 1e-14) {
      return Status::NumericalError("singular matrix in Solve");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(pivot, c), a(col, c));
      std::swap(x[pivot], x[col]);
    }
    const double d = a(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a(r, col) / d;
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= f * a(col, c);
      x[r] -= f * x[col];
    }
  }
  // Back substitution.
  for (std::size_t i = n; i-- > 0;) {
    double s = x[i];
    for (std::size_t c = i + 1; c < n; ++c) s -= a(i, c) * x[c];
    x[i] = s / a(i, i);
  }
  return x;
}

Result<Matrix> Matrix::Inverse() const {
  if (rows_ != cols_) return Status::InvalidArgument("Inverse requires square matrix");
  const std::size_t n = rows_;
  Matrix a = *this;
  Matrix inv = Identity(n);
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a(r, col)) > std::fabs(a(pivot, col))) pivot = r;
    }
    if (std::fabs(a(pivot, col)) < 1e-14) {
      return Status::NumericalError("singular matrix in Inverse");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a(pivot, c), a(col, c));
        std::swap(inv(pivot, c), inv(col, c));
      }
    }
    const double d = a(col, col);
    for (std::size_t c = 0; c < n; ++c) {
      a(col, c) /= d;
      inv(col, c) /= d;
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = a(r, col);
      if (f == 0.0) continue;
      for (std::size_t c = 0; c < n; ++c) {
        a(r, c) -= f * a(col, c);
        inv(r, c) -= f * inv(col, c);
      }
    }
  }
  return inv;
}

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

bool Matrix::AllFinite() const {
  return std::all_of(data_.begin(), data_.end(),
                     [](double v) { return std::isfinite(v); });
}

bool Matrix::IsRowStochastic(double tol) const {
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) {
      if ((*this)(r, c) < -tol) return false;
      sum += (*this)(r, c);
    }
    if (std::fabs(sum - 1.0) > tol) return false;
  }
  return true;
}

double Dot(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

Vector Add(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector Subtract(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector Scale(const Vector& a, double s) {
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

double NormL1(const Vector& a) {
  double s = 0.0;
  for (double v : a) s += std::fabs(v);
  return s;
}

double NormL2(const Vector& a) { return std::sqrt(Dot(a, a)); }

double NormInf(const Vector& a) {
  double m = 0.0;
  for (double v : a) m = std::max(m, std::fabs(v));
  return m;
}

double DistanceL1(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += std::fabs(a[i] - b[i]);
  return s;
}

bool IsProbabilityVector(const Vector& v, double tol) {
  double sum = 0.0;
  for (double x : v) {
    if (x < -tol) return false;
    sum += x;
  }
  return std::fabs(sum - 1.0) <= tol;
}

}  // namespace pf
