#include "common/matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pf {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows.size() == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    assert(row.size() == cols_ && "ragged initializer list");
    for (double v : row) data_.push_back(v);
  }
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Diagonal(const Vector& diag) {
  Matrix m(diag.size(), diag.size(), 0.0);
  for (std::size_t i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

Vector Matrix::Row(std::size_t r) const {
  Vector out(cols_);
  for (std::size_t c = 0; c < cols_; ++c) out[c] = (*this)(r, c);
  return out;
}

Vector Matrix::Col(std::size_t c) const {
  Vector out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

Matrix Matrix::operator*(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out(i, j) += a * other(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix Matrix::operator*(double scalar) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= scalar;
  return out;
}

Vector Matrix::Apply(const Vector& v) const {
  assert(v.size() == cols_);
  Vector out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out[r] += (*this)(r, c) * v[c];
  return out;
}

Vector Matrix::ApplyLeft(const Vector& v) const {
  assert(v.size() == rows_);
  Vector out(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double a = v[r];
    if (a == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) out[c] += a * (*this)(r, c);
  }
  return out;
}

Matrix Matrix::Power(unsigned p) const {
  assert(rows_ == cols_);
  Matrix result = Identity(rows_);
  Matrix base = *this;
  while (p > 0) {
    if (p & 1u) result = result * base;
    base = base * base;
    p >>= 1u;
  }
  return result;
}

Result<Vector> Matrix::Solve(const Vector& b) const {
  if (rows_ != cols_ || b.size() != rows_) {
    return Status::InvalidArgument("Solve requires square A and matching b");
  }
  const std::size_t n = rows_;
  // Augmented copy.
  Matrix a = *this;
  Vector x = b;
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a(r, col)) > std::fabs(a(pivot, col))) pivot = r;
    }
    if (std::fabs(a(pivot, col)) < 1e-14) {
      return Status::NumericalError("singular matrix in Solve");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(pivot, c), a(col, c));
      std::swap(x[pivot], x[col]);
    }
    const double d = a(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a(r, col) / d;
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= f * a(col, c);
      x[r] -= f * x[col];
    }
  }
  // Back substitution.
  for (std::size_t i = n; i-- > 0;) {
    double s = x[i];
    for (std::size_t c = i + 1; c < n; ++c) s -= a(i, c) * x[c];
    x[i] = s / a(i, i);
  }
  return x;
}

Result<Matrix> Matrix::Inverse() const {
  if (rows_ != cols_) return Status::InvalidArgument("Inverse requires square matrix");
  const std::size_t n = rows_;
  Matrix a = *this;
  Matrix inv = Identity(n);
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a(r, col)) > std::fabs(a(pivot, col))) pivot = r;
    }
    if (std::fabs(a(pivot, col)) < 1e-14) {
      return Status::NumericalError("singular matrix in Inverse");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a(pivot, c), a(col, c));
        std::swap(inv(pivot, c), inv(col, c));
      }
    }
    const double d = a(col, col);
    for (std::size_t c = 0; c < n; ++c) {
      a(col, c) /= d;
      inv(col, c) /= d;
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = a(r, col);
      if (f == 0.0) continue;
      for (std::size_t c = 0; c < n; ++c) {
        a(r, c) -= f * a(col, c);
        inv(r, c) -= f * inv(col, c);
      }
    }
  }
  return inv;
}

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

bool Matrix::AllFinite() const {
  return std::all_of(data_.begin(), data_.end(),
                     [](double v) { return std::isfinite(v); });
}

bool Matrix::IsRowStochastic(double tol) const {
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) {
      if ((*this)(r, c) < -tol) return false;
      sum += (*this)(r, c);
    }
    if (std::fabs(sum - 1.0) > tol) return false;
  }
  return true;
}

double Dot(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

Vector Add(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector Subtract(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector Scale(const Vector& a, double s) {
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

double NormL1(const Vector& a) {
  double s = 0.0;
  for (double v : a) s += std::fabs(v);
  return s;
}

double NormL2(const Vector& a) { return std::sqrt(Dot(a, a)); }

double NormInf(const Vector& a) {
  double m = 0.0;
  for (double v : a) m = std::max(m, std::fabs(v));
  return m;
}

double DistanceL1(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += std::fabs(a[i] - b[i]);
  return s;
}

bool IsProbabilityVector(const Vector& v, double tol) {
  double sum = 0.0;
  for (double x : v) {
    if (x < -tol) return false;
    sum += x;
  }
  return std::fabs(sum - 1.0) <= tol;
}

}  // namespace pf
