// Unified allocation accounting for analysis results. Both the chain
// (MQMExact power ladder) and general-network (elimination factor tables)
// analyses report their memory behavior through this one struct, surfaced
// unchanged in PrivacyEngine::AnalysisStats.
#ifndef PUFFERFISH_COMMON_MEMORY_STATS_H_
#define PUFFERFISH_COMMON_MEMORY_STATS_H_

#include <algorithm>
#include <cstddef>

namespace pf {

/// \brief Allocation accounting of one analysis (or the max/sum over a
/// class Theta).
struct MemoryStats {
  /// Peak bytes of simultaneously live analysis tables: the streamed power
  /// ladder + maximization tables + dedup class store for chain analyses,
  /// the largest live factor-table set for elimination-backed analyses.
  std::size_t peak_bytes = 0;
  /// Bytes retained by pooled/arena buffers after the analysis for reuse
  /// by the next one (the price of the zero-steady-state-malloc hot path):
  /// the resumable ladder/class state for chains, the thread-local
  /// elimination arena for networks.
  std::size_t arena_retained_bytes = 0;
  /// Heap-block acquisitions attributable to this analysis: arena block
  /// allocations plus tracked scratch-buffer growths. 0 in steady state
  /// (warm arena, warm resumable analysis) — the measurable zero-malloc
  /// claim of the hot path.
  std::size_t mallocs = 0;

  /// Folds another analysis into this one: byte quantities max (they bound
  /// worst-case residency), malloc events sum (they are work performed).
  void MergeMax(const MemoryStats& other) {
    peak_bytes = std::max(peak_bytes, other.peak_bytes);
    arena_retained_bytes =
        std::max(arena_retained_bytes, other.arena_retained_bytes);
    mallocs += other.mallocs;
  }
};

}  // namespace pf

#endif  // PUFFERFISH_COMMON_MEMORY_STATS_H_
