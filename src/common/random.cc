#include "common/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/fingerprint.h"

namespace pf {

double Rng::Uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(gen_);
}

double Rng::Uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(gen_);
}

std::size_t Rng::UniformInt(std::size_t n) {
  assert(n > 0);
  return std::uniform_int_distribution<std::size_t>(0, n - 1)(gen_);
}

double LaplaceInverseCdf(double u, double scale) {
  // Inverse CDF: X = -b * sgn(t) * ln(1 - 2|t|), t = u - 1/2 in
  // (-1/2, 1/2).
  const double t = u - 0.5;
  const double sign = (t >= 0.0) ? 1.0 : -1.0;
  // The tail 1 - 2|t| rounds to exactly 0 for u below ~1e-17 (u - 0.5
  // collapses to -1/2), where log would produce the infinite noise value
  // this fix removes; clamp to the smallest positive normal. No draw
  // uniform_real_distribution emits (multiples of 2^-53) hits the clamp,
  // so generator-fed noise streams are unchanged bit for bit.
  const double tail = std::max(1.0 - 2.0 * std::fabs(t),
                               std::numeric_limits<double>::min());
  return -scale * sign * std::log(tail);
}

double Rng::Laplace(double scale) {
  assert(scale >= 0.0);
  // Uniform() draws from the half-open [0, 1); the boundary draw u = 0
  // maps through the inverse CDF to log(0) = -infinity — an infinite
  // noise value released to the caller. Redraw into the open interval:
  // the conditional distribution is unchanged, and every non-boundary
  // draw produces bit-identical values to the pre-fix stream.
  double u;
  do {
    u = Uniform();
  } while (u == 0.0);
  return LaplaceInverseCdf(u, scale);
}

Result<std::size_t> Rng::TryCategorical(const Vector& probs) {
  if (probs.empty()) {
    return Status::InvalidArgument("categorical weights are empty");
  }
  double total = 0.0;
  for (double p : probs) {
    // (p >= 0) is false for NaN, so this also rejects NaN-poisoned
    // weights instead of letting r = NaN fall through every bucket.
    if (!(p >= 0.0) || !std::isfinite(p)) {
      return Status::InvalidArgument(
          "categorical weights must be finite and nonnegative");
    }
    total += p;
  }
  if (total <= 0.0) {
    // All-zero weights: the pre-fix scan returned index 0 because
    // r = Uniform() * 0 satisfied r <= 0 immediately.
    return Status::InvalidArgument("categorical weights sum to zero");
  }
  if (!std::isfinite(total)) {
    // Finite weights can still overflow the sum (e.g. several 1e308
    // entries); r = Uniform() * inf never terminates the scan early, which
    // would silently return the last index on every draw.
    return Status::InvalidArgument("categorical weights overflow their sum");
  }
  double r = Uniform() * total;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    r -= probs[i];
    if (r <= 0.0) return i;
  }
  return probs.size() - 1;  // Guard against floating point underflow.
}

std::size_t Rng::Categorical(const Vector& probs) {
  // pf:allow(value-or-die): Categorical's documented contract IS to abort
  // on invalid weights (see random.h / PR 4); callers that must not abort
  // use TryCategorical and handle the Status.
  return TryCategorical(probs).ValueOrDie();  // pf:allow(value-or-die)
}

Vector Rng::UniformSimplex(std::size_t k) {
  assert(k > 0);
  // Exponential spacings method: normalize i.i.d. Exp(1) draws.
  Vector v(k);
  double sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    v[i] = -std::log(1.0 - Uniform());
    sum += v[i];
  }
  for (double& x : v) x /= sum;
  return v;
}

double AddLaplaceNoise(double value, double scale, Rng* rng) {
  return value + rng->Laplace(scale);
}

Vector AddLaplaceNoise(const Vector& value, double scale, Rng* rng) {
  Vector out = value;
  for (double& v : out) v += rng->Laplace(scale);
  return out;
}

void AddLaplaceNoise(double* values, std::size_t n, double scale, Rng* rng) {
  for (std::size_t i = 0; i < n; ++i) values[i] += rng->Laplace(scale);
}

std::uint64_t TicketNoiseSeed(std::uint64_t seed, std::uint64_t ticket) {
  return SplitMix64(seed + 0x9E3779B97F4A7C15u * ticket);
}

}  // namespace pf
