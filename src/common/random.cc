#include "common/random.h"

#include <cassert>
#include <cmath>

namespace pf {

double Rng::Uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(gen_);
}

double Rng::Uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(gen_);
}

std::size_t Rng::UniformInt(std::size_t n) {
  assert(n > 0);
  return std::uniform_int_distribution<std::size_t>(0, n - 1)(gen_);
}

double Rng::Laplace(double scale) {
  assert(scale >= 0.0);
  // Inverse CDF: X = -b * sgn(u) * ln(1 - 2|u|), u ~ U(-1/2, 1/2).
  const double u = Uniform() - 0.5;
  const double sign = (u >= 0.0) ? 1.0 : -1.0;
  return -scale * sign * std::log(1.0 - 2.0 * std::fabs(u));
}

std::size_t Rng::Categorical(const Vector& probs) {
  assert(!probs.empty());
  double total = 0.0;
  for (double p : probs) total += p;
  double r = Uniform() * total;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    r -= probs[i];
    if (r <= 0.0) return i;
  }
  return probs.size() - 1;  // Guard against floating point underflow.
}

Vector Rng::UniformSimplex(std::size_t k) {
  assert(k > 0);
  // Exponential spacings method: normalize i.i.d. Exp(1) draws.
  Vector v(k);
  double sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    v[i] = -std::log(1.0 - Uniform());
    sum += v[i];
  }
  for (double& x : v) x /= sum;
  return v;
}

double AddLaplaceNoise(double value, double scale, Rng* rng) {
  return value + rng->Laplace(scale);
}

Vector AddLaplaceNoise(const Vector& value, double scale, Rng* rng) {
  Vector out = value;
  for (double& v : out) v += rng->Laplace(scale);
  return out;
}

}  // namespace pf
