#include "common/deadline.h"

#include <string>

namespace pf {
namespace {

Deadline& ThreadDeadline() {
  thread_local Deadline current;
  return current;
}

}  // namespace

const Deadline& CurrentDeadline() { return ThreadDeadline(); }

DeadlineScope::DeadlineScope(const Deadline& deadline)
    : saved_(ThreadDeadline()) {
  ThreadDeadline() = deadline;
}

DeadlineScope::~DeadlineScope() { ThreadDeadline() = saved_; }

Status CheckDeadline(const char* what) {
  const Deadline& d = ThreadDeadline();
  if (d.infinite()) return Status::OK();
  if (!d.expired()) return Status::OK();
  return Status::DeadlineExceeded(std::string("deadline expired in ") + what);
}

}  // namespace pf
