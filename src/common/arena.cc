#include "common/arena.h"

#include <algorithm>
#include <atomic>

namespace pf {

namespace {

constexpr std::size_t kAlign = 16;

std::size_t RoundUp(std::size_t bytes) {
  return (bytes + (kAlign - 1)) & ~(kAlign - 1);
}

// Process-wide instrumentation: every arena folds its block events here so
// stats reporting can aggregate the thread_local subsystem arenas without
// enumerating threads.
//
// memory_order_relaxed is correct here (audited under TSan — see
// tests/tsan_stress_test.cc ArenaProcessWideCountersBalance): the counters
// are monotone statistics read only by stats reporting; no other memory is
// published through them, so no acquire/release pairing exists to break.
// fetch_add/fetch_sub are still atomic RMWs, so counts are never lost —
// relaxed only permits reads to observe a momentarily stale total.
std::atomic<std::uint64_t>& TotalBlocks() {
  static std::atomic<std::uint64_t> total{0};
  return total;
}

std::atomic<std::uint64_t>& TotalRetained() {
  static std::atomic<std::uint64_t> total{0};
  return total;
}

}  // namespace

Arena::Arena(std::size_t min_block_bytes)
    : min_block_bytes_(std::max<std::size_t>(RoundUp(min_block_bytes), kAlign)) {}

Arena::~Arena() { Release(); }

void* Arena::Allocate(std::size_t bytes) {
  bytes = RoundUp(std::max<std::size_t>(bytes, 1));
  if (block_ < blocks_.size() && offset_ + bytes <= blocks_[block_].size) {
    void* p = blocks_[block_].data.get() + offset_;
    offset_ += bytes;
    in_use_ += bytes;
    peak_ = std::max(peak_, in_use_);
    return p;
  }
  return AllocateSlow(bytes);
}

void* Arena::AllocateSlow(std::size_t bytes) {
  // Advance past retained blocks that cannot fit the request (their unused
  // tails are dead until the next Reset/Rewind — the usual bump-arena
  // trade; block doubling keeps the waste a constant fraction).
  if (block_ < blocks_.size()) {
    ++block_;
    offset_ = 0;
    while (block_ < blocks_.size() && bytes > blocks_[block_].size) {
      ++block_;
    }
  }
  if (block_ == blocks_.size()) {
    std::size_t size = std::max(min_block_bytes_, bytes);
    if (!blocks_.empty()) size = std::max(size, blocks_.back().size * 2);
    Block b;
    b.data.reset(new char[size]);
    b.size = size;
    blocks_.push_back(std::move(b));
    retained_ += size;
    ++block_allocations_;
    TotalBlocks().fetch_add(1, std::memory_order_relaxed);
    TotalRetained().fetch_add(size, std::memory_order_relaxed);
  }
  void* p = blocks_[block_].data.get() + offset_;
  offset_ += bytes;
  in_use_ += bytes;
  peak_ = std::max(peak_, in_use_);
  return p;
}

void Arena::Rewind(const Checkpoint& cp) {
  block_ = cp.block;
  offset_ = cp.offset;
  in_use_ = cp.in_use;
}

void Arena::Reset() {
  block_ = 0;
  offset_ = 0;
  in_use_ = 0;
}

void Arena::Release() {
  TotalRetained().fetch_sub(retained_, std::memory_order_relaxed);
  blocks_.clear();
  retained_ = 0;
  Reset();
}

std::uint64_t Arena::TotalBlockAllocations() {
  return TotalBlocks().load(std::memory_order_relaxed);
}

std::uint64_t Arena::TotalRetainedBytes() {
  return TotalRetained().load(std::memory_order_relaxed);
}

}  // namespace pf
