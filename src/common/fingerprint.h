// Order-sensitive 64-bit fingerprinting (FNV-1a) of models and mechanism
// configurations. Used by the AnalysisCache to key cached analyses: two
// mechanisms with bit-identical models, parameters, and kind tags produce
// the same fingerprint.
#ifndef PUFFERFISH_COMMON_FINGERPRINT_H_
#define PUFFERFISH_COMMON_FINGERPRINT_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/matrix.h"

namespace pf {

/// The raw bit pattern of a double (cache keys treat epsilons as equal iff
/// bit-identical; note -0.0 != 0.0 and NaNs never match themselves).
inline std::uint64_t DoubleBits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// \brief Domain-separation tag for PREFIX fingerprints: hashes of a model
/// with its record-length dimension removed (Mechanism::PrefixFingerprint).
/// Folding the tag guarantees a prefix fingerprint never collides with the
/// full fingerprint of the same model by construction — the two key
/// different cache namespaces (plans vs resumable analyses).
inline constexpr std::uint64_t kPrefixTag = 0x5741505045454E44u;  // "append"

/// \brief Maps the one reserved value (0 = "no prefix fingerprint" in
/// Mechanism::PrefixFingerprint) away so a real hash can never be mistaken
/// for the sentinel. Deterministic: equal inputs stay equal.
inline std::uint64_t EnsureNonZeroFingerprint(std::uint64_t h) {
  return h == 0 ? kPrefixTag : h;
}

/// \brief One SplitMix64 scramble step: a cheap, well-distributed 64-bit
/// mix shared by the cache key hash and the per-session/per-ticket seed
/// derivations (keep the constants in one place).
inline std::uint64_t SplitMix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15u;
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9u;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBu;
  z ^= z >> 31;
  return z;
}

/// \brief Incremental FNV-1a hasher over primitive values and containers.
///
/// Each Add also folds in a type/length tag, so e.g. the vectors {1.0} ++
/// {2.0} and {1.0, 2.0} hash differently.
class Fingerprint {
 public:
  Fingerprint& Add(std::uint64_t v) {
    Mix(v);
    return *this;
  }

  Fingerprint& Add(int v) {
    return Add(static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
  }

  Fingerprint& Add(bool v) { return Add(static_cast<std::uint64_t>(v)); }

  Fingerprint& Add(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    Mix(bits);
    return *this;
  }

  Fingerprint& Add(const Vector& v) {
    Add(std::uint64_t{0x7EC5});
    Add(v.size());
    for (double x : v) Add(x);
    return *this;
  }

  Fingerprint& Add(const Matrix& m) {
    Add(std::uint64_t{0xB1A5});
    Add(m.rows()).Add(m.cols());
    for (std::size_t r = 0; r < m.rows(); ++r) {
      for (std::size_t c = 0; c < m.cols(); ++c) Add(m(r, c));
    }
    return *this;
  }

  Fingerprint& Add(const std::string& s) {
    Add(s.size());
    for (char ch : s) Mix(static_cast<std::uint64_t>(static_cast<unsigned char>(ch)));
    return *this;
  }

  std::uint64_t hash() const { return hash_; }

 private:
  void Mix(std::uint64_t v) {
    // FNV-1a, one byte at a time.
    for (int byte = 0; byte < 8; ++byte) {
      hash_ ^= (v >> (8 * byte)) & 0xFFu;
      hash_ *= 0x100000001B3u;
    }
  }

  std::uint64_t hash_ = 0xCBF29CE484222325u;  // FNV offset basis.
};

}  // namespace pf

#endif  // PUFFERFISH_COMMON_FINGERPRINT_H_
