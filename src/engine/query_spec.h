// Declarative queries for the PrivacyEngine front door. A QuerySpec names
// *what* to release (sum, mean, state frequency, histogram, or a custom
// Lipschitz function) and at which epsilon; the engine compiles it — once,
// cached — into a concrete (VectorQuery, MechanismPlan) pair sized to the
// engine's model. Callers never hand-wire Lipschitz constants for the
// built-in kinds: they follow from the model's state count and length
// exactly as in src/pufferfish/query.h.
#ifndef PUFFERFISH_ENGINE_QUERY_SPEC_H_
#define PUFFERFISH_ENGINE_QUERY_SPEC_H_

#include <cstddef>
#include <functional>
#include <string>

#include "common/histogram.h"
#include "common/matrix.h"
#include "common/status.h"
#include "pufferfish/query.h"

namespace pf {

/// The built-in query shapes plus the custom escape hatch.
enum class QueryKind {
  kSum,                  ///< sum_t X_t (Lipschitz k-1).
  kMean,                 ///< (1/T) sum_t X_t (Lipschitz (k-1)/T).
  kStateFrequency,       ///< Fraction of time in one state (Lipschitz 1/T).
  kCountHistogram,       ///< Per-state counts (Lipschitz 2).
  kFrequencyHistogram,   ///< Relative frequencies (Lipschitz 2/T).
  kCustomScalar,         ///< Caller-supplied scalar L-Lipschitz query.
  kCustomVector,         ///< Caller-supplied vector L-Lipschitz (L1) query.
};

const char* QueryKindName(QueryKind kind);

/// \brief A declarative query: kind + parameters + privacy level.
///
/// Construct via the factories; a default-constructed spec is kSum at
/// epsilon 1. Two specs with the same CacheKey() compile identically, which
/// is what the engine's compiled-query cache relies on — so custom queries
/// must carry a caller-chosen unique name.
struct QuerySpec {
  QueryKind kind = QueryKind::kSum;
  /// Privacy level this query is served at (one Analyze per epsilon).
  double epsilon = 1.0;
  /// State index for kStateFrequency.
  int state = 0;
  /// Name for custom queries (part of the compiled-query cache key).
  std::string name;
  /// Custom query bodies (exactly one set, matching the kind).
  std::function<double(const StateSequence&)> scalar_fn;
  std::function<Vector(const StateSequence&)> vector_fn;
  /// Lipschitz constant for custom queries.
  double lipschitz = 1.0;
  /// Output dimension for kCustomVector.
  std::size_t dim = 1;

  static QuerySpec Sum(double epsilon = 1.0);
  static QuerySpec Mean(double epsilon = 1.0);
  static QuerySpec StateFrequency(int state, double epsilon = 1.0);
  static QuerySpec CountHistogram(double epsilon = 1.0);
  static QuerySpec FrequencyHistogram(double epsilon = 1.0);
  static QuerySpec CustomScalar(std::string name,
                                std::function<double(const StateSequence&)> fn,
                                double lipschitz, double epsilon = 1.0);
  static QuerySpec CustomVector(std::string name,
                                std::function<Vector(const StateSequence&)> fn,
                                double lipschitz, std::size_t dim,
                                double epsilon = 1.0);

  /// Returns this spec at a different privacy level (sweeps, sessions with
  /// per-query budgets).
  QuerySpec WithEpsilon(double new_epsilon) const;

  /// Key identifying the compiled form: kind, parameters, and the epsilon
  /// bit pattern. Custom queries are keyed by their name; reusing a name
  /// with a different body serves the first body (documented caller bug).
  std::string CacheKey() const;

  /// Structural validity (finite positive epsilon, bodies present for
  /// custom kinds, nonnegative Lipschitz constant).
  Status Validate() const;
};

/// \brief Compiles a spec to a concrete vector query for a model with
/// `num_states` states and records of length `length`. Built-in kinds that
/// need the state space or length fail with FailedPrecondition when the
/// model has none (num_states == 0 / length == 0) — e.g. Wasserstein
/// output-pair models serve only kSum and custom queries.
Result<VectorQuery> CompileQuerySpec(const QuerySpec& spec,
                                     std::size_t num_states,
                                     std::size_t length);

}  // namespace pf

#endif  // PUFFERFISH_ENGINE_QUERY_SPEC_H_
