// The serving-side thread pool: a work-queue executor returning futures,
// complementing common/parallel.h (which runs one deterministic indexed
// loop at a time). Submitted tasks are independent requests — the engine
// dispatches compiled (query, plan) pairs here, and determinism comes from
// the *tasks* (per-ticket RNG seeds), not from the scheduler.
#ifndef PUFFERFISH_ENGINE_EXECUTOR_H_
#define PUFFERFISH_ENGINE_EXECUTOR_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/thread_annotations.h"

namespace pf {

/// \brief Fixed pool of workers draining a FIFO task queue.
///
/// Tasks must not throw (Status/Result style, as everywhere in the
/// library); a task's error travels inside its returned Result, never as an
/// exception through the future. The destructor drains the queue: every
/// submitted task runs before shutdown, so futures never dangle.
class Executor {
 public:
  /// Remembers the pool size (0 = hardware concurrency, the library-wide
  /// convention — see common/parallel.h); workers are spawned lazily on
  /// the first Submit, so engines used only for synchronous
  /// Compile/Release never pay for idle threads.
  explicit Executor(std::size_t num_threads)
      : num_threads_(ResolveThreadCount(num_threads)) {}

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  ~Executor() {
    // Move the worker handles out under the lock (joining while holding
    // mutex_ would deadlock against workers draining the queue).
    std::vector<std::thread> workers;
    {
      MutexLock lock(mutex_);
      shutdown_ = true;
      workers = std::move(workers_);
    }
    wake_.NotifyAll();
    for (std::thread& w : workers) w.join();
  }

  std::size_t num_threads() const { return num_threads_; }

  /// \brief Enqueues `fn` and returns a future for its result. fn must be
  /// invocable with no arguments and must not throw.
  template <typename F>
  auto Submit(F&& fn) -> std::future<decltype(fn())> {
    using R = decltype(fn());
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      MutexLock lock(mutex_);
      if (workers_.empty() && !shutdown_) {
        workers_.reserve(num_threads_);
        for (std::size_t t = 0; t < num_threads_; ++t) {
          workers_.emplace_back([this] { WorkerLoop(); });
        }
      }
      queue_.emplace_back([task] { (*task)(); });
    }
    wake_.NotifyOne();
    return future;
  }

 private:
  void WorkerLoop() PF_EXCLUDES(mutex_) {
    while (true) {
      std::function<void()> task;
      {
        MutexLock lock(mutex_);
        while (!shutdown_ && queue_.empty()) {
          wake_.Wait(mutex_);
        }
        if (queue_.empty()) return;  // shutdown_ and nothing left to drain.
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  const std::size_t num_threads_;
  Mutex mutex_;
  CondVar wake_;
  std::deque<std::function<void()>> queue_ PF_GUARDED_BY(mutex_);
  /// Empty until the first Submit; the destructor moves the handles out
  /// under the lock before joining.
  std::vector<std::thread> workers_ PF_GUARDED_BY(mutex_);
  bool shutdown_ PF_GUARDED_BY(mutex_) = false;
};

}  // namespace pf

#endif  // PUFFERFISH_ENGINE_EXECUTOR_H_
