// The serving-side thread pool: a work-queue executor returning futures,
// complementing common/parallel.h (which runs one deterministic indexed
// loop at a time). Submitted tasks are independent requests — the engine
// dispatches compiled (query, plan) pairs here, and determinism comes from
// the *tasks* (per-ticket RNG seeds), not from the scheduler.
//
// Admission control: the queue is bounded (ExecutorOptions::max_queue_depth)
// and admission is explicit. Callers first TryAcquire() a queue-slot
// Permit — refused with Status::Unavailable when the queue is full — and
// only then commit side effects (e.g. charging a privacy-budget ledger)
// before Submit(permit, fn). That ordering is what guarantees a shed
// request never debits epsilon: the refusal happens before any charge.
#ifndef PUFFERFISH_ENGINE_EXECUTOR_H_
#define PUFFERFISH_ENGINE_EXECUTOR_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace pf {

/// Configuration for an Executor.
struct ExecutorOptions {
  /// Worker count; 0 = hardware concurrency (library-wide convention).
  std::size_t num_threads = 0;
  /// Maximum tasks waiting in the queue before TryAcquire sheds with
  /// Unavailable. 0 = unbounded (the pre-admission-control behavior,
  /// kept for tools that would rather block memory than shed).
  std::size_t max_queue_depth = 1024;
};

/// \brief Fixed pool of workers draining a bounded FIFO task queue.
///
/// Tasks must not throw (Status/Result style, as everywhere in the
/// library); a task's error travels inside its returned Result, never as an
/// exception through the future. The destructor drains the queue: every
/// admitted task runs before shutdown, so futures never dangle.
class Executor {
 public:
  /// \brief Move-only RAII hold on one queue slot, acquired via
  /// TryAcquire(). Passing it to Submit transfers the slot to the queued
  /// task (released when a worker dequeues the task); destroying an unused
  /// Permit returns the slot immediately. Never outlive the Executor.
  class Permit {
   public:
    Permit() = default;
    Permit(Permit&& other) noexcept : exec_(other.exec_) {
      other.exec_ = nullptr;
    }
    Permit& operator=(Permit&& other) noexcept {
      if (this != &other) {
        Release();
        exec_ = other.exec_;
        other.exec_ = nullptr;
      }
      return *this;
    }
    ~Permit() { Release(); }

    Permit(const Permit&) = delete;
    Permit& operator=(const Permit&) = delete;

    /// True iff this permit still holds a slot.
    bool valid() const { return exec_ != nullptr; }

   private:
    friend class Executor;
    explicit Permit(Executor* exec) : exec_(exec) {}
    void Release() {
      if (exec_ != nullptr) {
        exec_->ReleaseSlot();
        exec_ = nullptr;
      }
    }
    /// Hands slot ownership to the caller (the queued task) without
    /// releasing it.
    Executor* Detach() {
      Executor* e = exec_;
      exec_ = nullptr;
      return e;
    }
    Executor* exec_ = nullptr;
  };

  /// Admission counters, all monotonically increasing. Invariant:
  /// submitted == admitted + shed (each TryAcquire resolves one way).
  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
  };

  explicit Executor(const ExecutorOptions& options)
      : num_threads_(ResolveThreadCount(options.num_threads)),
        max_queue_depth_(options.max_queue_depth) {}

  /// Convenience: pool of `num_threads` (0 = hardware concurrency) with the
  /// default queue bound. Workers are spawned lazily on the first Submit,
  /// so engines used only for synchronous Compile/Release never pay for
  /// idle threads.
  explicit Executor(std::size_t num_threads)
      : Executor(ExecutorOptions{num_threads, ExecutorOptions().max_queue_depth}) {}

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  ~Executor() {
    // Move the worker handles out under the lock (joining while holding
    // mutex_ would deadlock against workers draining the queue).
    std::vector<std::thread> workers;
    {
      MutexLock lock(mutex_);
      shutdown_ = true;
      workers = std::move(workers_);
    }
    wake_.NotifyAll();
    for (std::thread& w : workers) w.join();
  }

  std::size_t num_threads() const { return num_threads_; }
  std::size_t max_queue_depth() const { return max_queue_depth_; }

  /// Tasks currently holding queue slots (waiting or permit-held, not yet
  /// dequeued). The engine's cold-analysis shed policy reads this.
  std::size_t queue_depth() const {
    return depth_.load(std::memory_order_relaxed);
  }

  Stats stats() const {
    Stats s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.admitted = admitted_.load(std::memory_order_relaxed);
    s.shed = shed_.load(std::memory_order_relaxed);
    return s;
  }

  /// \brief Tries to reserve one queue slot. Returns Unavailable (a
  /// transient, retry-after-load-drops refusal) when max_queue_depth tasks
  /// already hold slots. Acquire the permit BEFORE charging budgets or
  /// other side effects so a shed request leaves no trace.
  Result<Permit> TryAcquire() {
    submitted_.fetch_add(1, std::memory_order_relaxed);
    if (max_queue_depth_ > 0) {
      std::size_t cur = depth_.load(std::memory_order_relaxed);
      while (true) {
        if (cur >= max_queue_depth_) {
          shed_.fetch_add(1, std::memory_order_relaxed);
          return Status::Unavailable(
              "executor queue full (depth " + std::to_string(cur) + " >= " +
              std::to_string(max_queue_depth_) + "); retry after load drops");
        }
        if (depth_.compare_exchange_weak(cur, cur + 1,
                                         std::memory_order_relaxed)) {
          break;
        }
      }
    } else {
      depth_.fetch_add(1, std::memory_order_relaxed);
    }
    admitted_.fetch_add(1, std::memory_order_relaxed);
    return Permit(this);
  }

  /// \brief Enqueues `fn` under a previously acquired permit and returns a
  /// future for its result. fn must be invocable with no arguments and must
  /// not throw. The permit's slot is released when a worker dequeues the
  /// task.
  template <typename F>
  auto Submit(Permit permit, F&& fn) -> std::future<decltype(fn())> {
    using R = decltype(fn());
    assert(permit.valid() && "Submit requires a valid permit");
    assert(permit.exec_ == this && "permit belongs to a different Executor");
    permit.Detach();  // Slot ownership moves to the queued task.
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      MutexLock lock(mutex_);
      if (workers_.empty() && !shutdown_) {
        workers_.reserve(num_threads_);
        for (std::size_t t = 0; t < num_threads_; ++t) {
          workers_.emplace_back([this] { WorkerLoop(); });
        }
      }
      queue_.emplace_back([task] { (*task)(); });
    }
    wake_.NotifyOne();
    return future;
  }

  /// \brief One-shot admission + enqueue: sheds with Unavailable when the
  /// queue is full, otherwise returns the task's future. Use the
  /// TryAcquire/Submit(permit) split instead when side effects (budget
  /// charges) must land between admission and enqueue.
  template <typename F>
  auto Submit(F&& fn) -> Result<std::future<decltype(fn())>> {
    auto permit = TryAcquire();
    if (!permit.ok()) return permit.status();
    return Submit(std::move(permit).value(), std::forward<F>(fn));
  }

 private:
  void ReleaseSlot() { depth_.fetch_sub(1, std::memory_order_relaxed); }

  void WorkerLoop() PF_EXCLUDES(mutex_) {
    while (true) {
      std::function<void()> task;
      {
        MutexLock lock(mutex_);
        while (!shutdown_ && queue_.empty()) {
          wake_.Wait(mutex_);
        }
        if (queue_.empty()) return;  // shutdown_ and nothing left to drain.
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      ReleaseSlot();  // The dequeued task no longer occupies queue depth.
      task();
    }
  }

  const std::size_t num_threads_;
  const std::size_t max_queue_depth_;
  std::atomic<std::size_t> depth_{0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> shed_{0};
  Mutex mutex_;
  CondVar wake_;
  std::deque<std::function<void()>> queue_ PF_GUARDED_BY(mutex_);
  /// Empty until the first Submit; the destructor moves the handles out
  /// under the lock before joining.
  std::vector<std::thread> workers_ PF_GUARDED_BY(mutex_);
  bool shutdown_ PF_GUARDED_BY(mutex_) = false;
};

}  // namespace pf

#endif  // PUFFERFISH_ENGINE_EXECUTOR_H_
