#include "engine/query_spec.h"

#include <cmath>
#include <cstdint>
#include <utility>

#include "common/fingerprint.h"

namespace pf {

namespace {

/// Wraps a scalar query as a 1-dimensional vector query.
VectorQuery Vectorize(ScalarQuery q) {
  VectorQuery v;
  v.name = std::move(q.name);
  v.lipschitz = q.lipschitz;
  v.dim = 1;
  v.fn = [fn = std::move(q.fn)](const StateSequence& seq) {
    return Vector{fn(seq)};
  };
  return v;
}

}  // namespace

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kSum: return "Sum";
    case QueryKind::kMean: return "Mean";
    case QueryKind::kStateFrequency: return "StateFrequency";
    case QueryKind::kCountHistogram: return "CountHistogram";
    case QueryKind::kFrequencyHistogram: return "FrequencyHistogram";
    case QueryKind::kCustomScalar: return "CustomScalar";
    case QueryKind::kCustomVector: return "CustomVector";
  }
  return "Unknown";
}

QuerySpec QuerySpec::Sum(double epsilon) {
  QuerySpec spec;
  spec.kind = QueryKind::kSum;
  spec.epsilon = epsilon;
  return spec;
}

QuerySpec QuerySpec::Mean(double epsilon) {
  QuerySpec spec;
  spec.kind = QueryKind::kMean;
  spec.epsilon = epsilon;
  return spec;
}

QuerySpec QuerySpec::StateFrequency(int state, double epsilon) {
  QuerySpec spec;
  spec.kind = QueryKind::kStateFrequency;
  spec.state = state;
  spec.epsilon = epsilon;
  return spec;
}

QuerySpec QuerySpec::CountHistogram(double epsilon) {
  QuerySpec spec;
  spec.kind = QueryKind::kCountHistogram;
  spec.epsilon = epsilon;
  return spec;
}

QuerySpec QuerySpec::FrequencyHistogram(double epsilon) {
  QuerySpec spec;
  spec.kind = QueryKind::kFrequencyHistogram;
  spec.epsilon = epsilon;
  return spec;
}

QuerySpec QuerySpec::CustomScalar(
    std::string name, std::function<double(const StateSequence&)> fn,
    double lipschitz, double epsilon) {
  QuerySpec spec;
  spec.kind = QueryKind::kCustomScalar;
  spec.name = std::move(name);
  spec.scalar_fn = std::move(fn);
  spec.lipschitz = lipschitz;
  spec.epsilon = epsilon;
  return spec;
}

QuerySpec QuerySpec::CustomVector(
    std::string name, std::function<Vector(const StateSequence&)> fn,
    double lipschitz, std::size_t dim, double epsilon) {
  QuerySpec spec;
  spec.kind = QueryKind::kCustomVector;
  spec.name = std::move(name);
  spec.vector_fn = std::move(fn);
  spec.lipschitz = lipschitz;
  spec.dim = dim;
  spec.epsilon = epsilon;
  return spec;
}

QuerySpec QuerySpec::WithEpsilon(double new_epsilon) const {
  QuerySpec spec = *this;
  spec.epsilon = new_epsilon;
  return spec;
}

std::string QuerySpec::CacheKey() const {
  std::string key = QueryKindName(kind);
  key += "/" + std::to_string(state);
  key += "/" + std::to_string(DoubleBits(epsilon));
  if (kind == QueryKind::kCustomScalar || kind == QueryKind::kCustomVector) {
    key += "/" + std::to_string(DoubleBits(lipschitz)) + "/" +
           std::to_string(dim) + "/" + name;
  }
  return key;
}

Status QuerySpec::Validate() const {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("query epsilon must be positive and finite");
  }
  switch (kind) {
    case QueryKind::kCustomScalar:
      if (!scalar_fn) {
        return Status::InvalidArgument("CustomScalar query has no body");
      }
      break;
    case QueryKind::kCustomVector:
      if (!vector_fn) {
        return Status::InvalidArgument("CustomVector query has no body");
      }
      if (dim == 0) {
        return Status::InvalidArgument("CustomVector query has dimension 0");
      }
      break;
    default:
      break;
  }
  if (kind == QueryKind::kCustomScalar || kind == QueryKind::kCustomVector) {
    if (!(lipschitz >= 0.0) || !std::isfinite(lipschitz)) {
      return Status::InvalidArgument(
          "custom query Lipschitz constant must be nonnegative and finite");
    }
    if (name.empty()) {
      return Status::InvalidArgument(
          "custom queries need a unique name (the compiled-query cache key)");
    }
  }
  return Status::OK();
}

Result<VectorQuery> CompileQuerySpec(const QuerySpec& spec,
                                     std::size_t num_states,
                                     std::size_t length) {
  PF_RETURN_NOT_OK(spec.Validate());
  // kSum deliberately absent: on stateless models it degrades to the raw
  // L = 1 sum below.
  const bool needs_states = spec.kind == QueryKind::kMean ||
                            spec.kind == QueryKind::kCountHistogram ||
                            spec.kind == QueryKind::kFrequencyHistogram;
  const bool needs_length = spec.kind == QueryKind::kMean ||
                            spec.kind == QueryKind::kStateFrequency ||
                            spec.kind == QueryKind::kFrequencyHistogram;
  if (needs_states && num_states == 0) {
    return Status::FailedPrecondition(
        std::string(QueryKindName(spec.kind)) +
        " needs a model with an explicit state space");
  }
  if (needs_length && length == 0) {
    return Status::FailedPrecondition(
        std::string(QueryKindName(spec.kind)) +
        " needs a model with a fixed record length");
  }
  switch (spec.kind) {
    case QueryKind::kSum: {
      if (num_states == 0) {
        // Output-pair / sensitivity models: the mechanism's sigma already
        // absorbs the query sensitivity, so the raw sum releases at L = 1.
        ScalarQuery q;
        q.name = "sum";
        q.lipschitz = 1.0;
        q.fn = [](const StateSequence& seq) {
          double total = 0.0;
          for (int s : seq) total += static_cast<double>(s);
          return total;
        };
        return Vectorize(std::move(q));
      }
      return Vectorize(SumQuery(num_states));
    }
    case QueryKind::kMean:
      return Vectorize(MeanStateQuery(num_states, length));
    case QueryKind::kStateFrequency:
      return Vectorize(StateFrequencyQuery(spec.state, length));
    case QueryKind::kCountHistogram:
      return CountHistogramQuery(num_states);
    case QueryKind::kFrequencyHistogram:
      return RelativeFrequencyQuery(num_states, length);
    case QueryKind::kCustomScalar: {
      ScalarQuery q;
      q.name = spec.name;
      q.lipschitz = spec.lipschitz;
      q.fn = spec.scalar_fn;
      return Vectorize(std::move(q));
    }
    case QueryKind::kCustomVector: {
      VectorQuery q;
      q.name = spec.name;
      q.lipschitz = spec.lipschitz;
      q.dim = spec.dim;
      q.fn = spec.vector_fn;
      return q;
    }
  }
  return Status::Internal("unhandled query kind");
}

}  // namespace pf
