#include "engine/session.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/failpoint.h"
#include "common/fingerprint.h"
#include "common/random.h"

namespace pf {

namespace {

/// Splitmix64 over (seed, ticket): each ticket gets an independent,
/// reproducible noise stream regardless of which executor thread runs it.
std::uint64_t MixSeed(std::uint64_t seed, std::uint64_t ticket) {
  return SplitMix64(seed + 0x9E3779B97F4A7C15u * ticket);
}

/// The quilt identity a release is accounted under. Chain mechanisms use
/// their active quilt (the Theorem 4.4 object; the stationary search makes
/// it represent every node). General-network plans fold *all* per-node
/// active quilts into one signature-carrying quilt — Definition 4.5's
/// precondition covers every S_{Q,i}, so a mismatch at any node must
/// refuse composition, not just one at the worst node. The remaining
/// mechanisms get a kind-tagged placeholder so releases of the same
/// (mechanism, model) ledger together but never alias a real quilt.
MarkovQuilt PlanActiveQuilt(const MechanismPlan& plan) {
  switch (plan.kind) {
    case MechanismKind::kMqmExact:
    case MechanismKind::kMqmApprox:
      return plan.chain.active_quilt;
    case MechanismKind::kMqmGeneral: {
      MarkovQuilt all;
      all.target = -1 - static_cast<int>(plan.kind);
      for (const QuiltScore& per_node : plan.mqm.active) {
        all.quilt.push_back(per_node.quilt.target);
        all.quilt.insert(all.quilt.end(), per_node.quilt.quilt.begin(),
                         per_node.quilt.quilt.end());
        all.quilt.push_back(
            -2 - static_cast<int>(per_node.quilt.nearby_count));  // Separator.
      }
      return all;
    }
    default:
      break;
  }
  MarkovQuilt tag;
  tag.target = -1 - static_cast<int>(plan.kind);
  return tag;
}

std::future<Result<ReleaseResult>> ReadyError(Status status) {
  std::promise<Result<ReleaseResult>> promise;
  promise.set_value(Result<ReleaseResult>(std::move(status)));
  return promise.get_future();
}

/// Resolves a DataWindow against a record of `size` observations into a
/// concrete (offset, length) slice; empty or out-of-range windows are
/// refused here, before anything is charged.
Result<std::pair<std::size_t, std::size_t>> ResolveWindow(
    const DataWindow& window, std::size_t size) {
  std::size_t offset = window.offset;
  std::size_t length = window.length;
  if (window.from_end) {
    if (length == 0 || length > size) {
      return Status::InvalidArgument(
          "suffix window of " + std::to_string(length) +
          " observations does not fit a record of " + std::to_string(size));
    }
    offset = size - length;
  } else {
    if (offset >= size) {
      return Status::InvalidArgument(
          "window offset " + std::to_string(offset) +
          " is outside the record of " + std::to_string(size));
    }
    if (length == 0) length = size - offset;
    // Overflow-safe form of offset + length > size (offset < size here).
    if (length > size - offset) {
      return Status::InvalidArgument(
          "window [" + std::to_string(offset) + ", " +
          std::to_string(offset + length) + ") exceeds the record of " +
          std::to_string(size));
    }
  }
  return std::make_pair(offset, length);
}

StateSequence SliceWindow(const StateSequence& data, std::size_t offset,
                          std::size_t length) {
  const auto begin = data.begin() + static_cast<std::ptrdiff_t>(offset);
  return StateSequence(begin, begin + static_cast<std::ptrdiff_t>(length));
}

}  // namespace

Session::Session(PrivacyEngine* engine, const SessionOptions& options)
    : engine_(engine),
      options_(options),
      seed_(options.seed.has_value() ? *options.seed
                                     : engine->NextSessionSeed()),
      in_flight_(std::make_shared<std::atomic<std::size_t>>(0)) {}

Status Session::AdmitInFlight() {
  const std::size_t cap = options_.max_in_flight;
  if (cap == 0) {
    in_flight_->fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  std::size_t current = in_flight_->load(std::memory_order_relaxed);
  while (true) {
    if (current >= cap) {
      return Status::Unavailable(
          "session in-flight cap reached (" + std::to_string(current) +
          " >= " + std::to_string(cap) +
          "); retry after outstanding releases complete");
    }
    // CAS keeps the cap exact under concurrent Submit calls: a plain
    // fetch_add could admit cap+1 tasks between the load and the bump.
    if (in_flight_->compare_exchange_weak(current, current + 1,
                                          std::memory_order_relaxed)) {
      return Status::OK();
    }
  }
}

Result<std::uint64_t> Session::ChargeLocked(const MechanismPlan& plan) {
  // A plan that can never release (GK16 outside its spectral condition, a
  // non-finite noise scale) must be refused *before* charging: the failed
  // release would produce nothing, so it must not burn budget.
  if (!plan.applicable) {
    return Status::FailedPrecondition(
        std::string(MechanismKindName(plan.kind)) +
        " is inapplicable for this model class (no finite noise scale); "
        "nothing was charged");
  }
  if (!std::isfinite(plan.sigma) || plan.sigma < 0.0) {
    return Status::FailedPrecondition(
        "plan has no finite noise scale; nothing was charged");
  }
  // Price the release before committing it: K+1 releases compose to
  // (K+1) * max epsilon (Theorem 4.4). Admission uses the shared
  // deterministic tie rule (ComposedBudgetAdmits): floating-point dust at
  // exact-fit boundaries like B = 0.3, eps = 0.1 is forgiven, genuine
  // overruns never are, so a budget of B admits exactly floor(B / eps)
  // equal-epsilon releases on every platform.
  const double max_epsilon = std::max(accountant_.MaxEpsilon(), plan.epsilon);
  const double budget = options_.epsilon_budget;
  if (!ComposedBudgetAdmits(accountant_.num_releases() + 1, max_epsilon,
                            budget)) {
    const double prospective =
        static_cast<double>(accountant_.num_releases() + 1) * max_epsilon;
    return Status::ResourceExhausted(
        "privacy budget exhausted: this release would compose to epsilon " +
        std::to_string(prospective) + " > budget " + std::to_string(budget));
  }
  // Records only if the active quilt matches every earlier release
  // (Theorem 4.4's precondition); a mismatch refuses with
  // FailedPrecondition and charges nothing.
  PF_RETURN_NOT_OK(
      accountant_.RecordReleaseStrict(plan.epsilon, PlanActiveQuilt(plan)));
  return next_ticket_++;
}

Result<ReleaseResult> Session::Execute(const PrivacyEngine::CompiledQuery& q,
                                       const StateSequence& data,
                                       std::uint64_t seed,
                                       std::uint64_t ticket) {
  // Fires after the charge (the body runs post-ticketing): the torture
  // tests pin that an execute-side failure surfaces as a typed Status on
  // the future, never a crash, and that the ledger stays consistent.
  PF_FAILPOINT("session.execute");
  Vector truth = q.query.fn(data);
  if (q.query.dim != 0 && truth.size() != q.query.dim) {
    // Unlike the statically-detectable refusals in ChargeLocked, this can
    // only surface after the budget was charged (the body runs on the
    // pool, after ticketing). The charge stands: overcharging a
    // contract-violating query is privacy-safe; refunding would require
    // sessions to outlive their futures.
    return Status::Internal("query '" + q.query.name + "' returned dimension " +
                            std::to_string(truth.size()) + ", declared " +
                            std::to_string(q.query.dim) +
                            " (epsilon was charged)");
  }
  Rng rng(MixSeed(seed, ticket));
  // The charge is structurally upstream: Execute only runs with a `ticket`
  // already issued by ChargeLocked (every caller is a Release overload or
  // the SubmitCompiled task body, both of which charge before invoking
  // it), so no in-function charge can or should dominate this release.
  // pf:allow(budget-flow): ticket proves the charge happened upstream
  PF_ASSIGN_OR_RETURN(Vector noisy, ReleaseVector(*q.plan, truth,
                                                  q.query.lipschitz, &rng));
  ReleaseResult result;
  result.value = std::move(noisy);
  result.epsilon = q.plan->epsilon;
  result.sigma = q.plan->sigma;
  result.mechanism = q.plan->kind;
  result.ticket = ticket;
  return result;
}

Result<ReleaseResult> Session::Release(const QuerySpec& spec,
                                       const StateSequence& data) {
  PF_ASSIGN_OR_RETURN(PrivacyEngine::CompiledQuery compiled,
                      engine_->Compile(spec));
  std::uint64_t ticket = 0;
  {
    MutexLock lock(mutex_);
    PF_ASSIGN_OR_RETURN(ticket, ChargeLocked(*compiled.plan));
  }
  return Execute(compiled, data, seed_, ticket);
}

Result<ReleaseResult> Session::Release(const QuerySpec& spec,
                                       const StateSequence& data,
                                       const DataWindow& window) {
  PF_ASSIGN_OR_RETURN(const auto span, ResolveWindow(window, data.size()));
  PF_ASSIGN_OR_RETURN(PrivacyEngine::CompiledQuery compiled,
                      engine_->Compile(spec, span.second));
  const StateSequence slice = SliceWindow(data, span.first, span.second);
  std::uint64_t ticket = 0;
  {
    MutexLock lock(mutex_);
    PF_ASSIGN_OR_RETURN(ticket, ChargeLocked(*compiled.plan));
  }
  return Execute(compiled, slice, seed_, ticket);
}

Result<ReleaseResult> Session::Release(const QuerySpec& spec,
                                       const StateSequence& data,
                                       const RequestOptions& request) {
  // Compile() re-checks the deadline, but refusing here keeps the
  // guarantee local: an expired ticket never reaches the charge path.
  if (request.deadline.expired()) {
    return Status::DeadlineExceeded(
        "request deadline already expired; nothing was charged");
  }
  PF_ASSIGN_OR_RETURN(PrivacyEngine::CompiledQuery compiled,
                      engine_->Compile(spec, 0, request));
  std::uint64_t ticket = 0;
  {
    MutexLock lock(mutex_);
    PF_ASSIGN_OR_RETURN(ticket, ChargeLocked(*compiled.plan));
  }
  return Execute(compiled, data, seed_, ticket);
}

Result<ReleaseResult> Session::Release(const QuerySpec& spec,
                                       const StateSequence& data,
                                       const DataWindow& window,
                                       const RequestOptions& request) {
  if (request.deadline.expired()) {
    return Status::DeadlineExceeded(
        "request deadline already expired; nothing was charged");
  }
  PF_ASSIGN_OR_RETURN(const auto span, ResolveWindow(window, data.size()));
  PF_ASSIGN_OR_RETURN(PrivacyEngine::CompiledQuery compiled,
                      engine_->Compile(spec, span.second, request));
  const StateSequence slice = SliceWindow(data, span.first, span.second);
  std::uint64_t ticket = 0;
  {
    MutexLock lock(mutex_);
    PF_ASSIGN_OR_RETURN(ticket, ChargeLocked(*compiled.plan));
  }
  return Execute(compiled, slice, seed_, ticket);
}

std::future<Result<ReleaseResult>> Session::Submit(const QuerySpec& spec,
                                                   StateSequence data) {
  return Submit(spec,
                std::make_shared<const StateSequence>(std::move(data)));
}

std::future<Result<ReleaseResult>> Session::Submit(const QuerySpec& spec,
                                                   const StateSequence& data,
                                                   const DataWindow& window) {
  return Submit(spec, data, window, RequestOptions{});
}

std::future<Result<ReleaseResult>> Session::Submit(
    const QuerySpec& spec, const StateSequence& data, const DataWindow& window,
    const RequestOptions& request) {
  if (request.deadline.expired()) {
    return ReadyError(Status::DeadlineExceeded(
        "request deadline already expired; nothing was charged"));
  }
  Result<std::pair<std::size_t, std::size_t>> span =
      ResolveWindow(window, data.size());
  if (!span.ok()) return ReadyError(span.status());
  Result<PrivacyEngine::CompiledQuery> compiled =
      engine_->Compile(spec, span.value().second, request);
  if (!compiled.ok()) return ReadyError(compiled.status());
  auto slice = std::make_shared<const StateSequence>(
      SliceWindow(data, span.value().first, span.value().second));
  return SubmitCompiled(std::move(compiled).value(), std::move(slice));
}

std::future<Result<ReleaseResult>> Session::Submit(
    const QuerySpec& spec, std::shared_ptr<const StateSequence> data) {
  return Submit(spec, std::move(data), RequestOptions{});
}

std::future<Result<ReleaseResult>> Session::Submit(
    const QuerySpec& spec, std::shared_ptr<const StateSequence> data,
    const RequestOptions& request) {
  if (request.deadline.expired()) {
    return ReadyError(Status::DeadlineExceeded(
        "request deadline already expired; nothing was charged"));
  }
  Result<PrivacyEngine::CompiledQuery> compiled =
      engine_->Compile(spec, 0, request);
  if (!compiled.ok()) return ReadyError(compiled.status());
  return SubmitCompiled(std::move(compiled).value(), std::move(data));
}

std::future<Result<ReleaseResult>> Session::SubmitCompiled(
    PrivacyEngine::CompiledQuery q, std::shared_ptr<const StateSequence> data) {
  // Admission strictly precedes accounting. The executor slot and the
  // in-flight slot are both claimed before ChargeLocked, so a request shed
  // here resolves to Unavailable with the ledger untouched; once the
  // charge lands, hand-off cannot fail (Submit with a valid permit always
  // enqueues), so a charged ticket always produces a release or a typed
  // execute error — never a silently dropped debit.
  Result<Executor::Permit> permit = engine_->executor().TryAcquire();
  if (!permit.ok()) return ReadyError(permit.status());
  Status admitted = AdmitInFlight();
  if (!admitted.ok()) return ReadyError(std::move(admitted));
  auto in_flight = in_flight_;
#ifdef PF_FAILPOINTS
  // Models a refusal between admission and the charge (e.g. a ledger
  // backend outage): both slots must be returned and nothing charged.
  {
    Status injected = FailpointRegistry::Instance().Evaluate("session.charge");
    if (!injected.ok()) {
      in_flight->fetch_sub(1, std::memory_order_relaxed);
      return ReadyError(std::move(injected));  // Permit released by ~Permit.
    }
  }
#endif
  std::uint64_t ticket = 0;
  {
    MutexLock lock(mutex_);
    Result<std::uint64_t> charged = ChargeLocked(*q.plan);
    if (!charged.ok()) {
      in_flight->fetch_sub(1, std::memory_order_relaxed);
      return ReadyError(charged.status());  // Permit released by ~Permit.
    }
    ticket = charged.value();
  }
  return engine_->executor().Submit(
      std::move(permit).value(),
      [q = std::move(q), data = std::move(data), seed = seed_, ticket,
       in_flight = std::move(in_flight)] {
        Result<ReleaseResult> result = Execute(q, *data, seed, ticket);
        in_flight->fetch_sub(1, std::memory_order_relaxed);
        return result;
      });
}

std::vector<std::future<Result<ReleaseResult>>> Session::SubmitBatch(
    const std::vector<QuerySpec>& specs, const StateSequence& data) {
  // One wrapped copy shared by every task instead of one copy per query.
  auto shared = std::make_shared<const StateSequence>(data);
  std::vector<std::future<Result<ReleaseResult>>> futures;
  futures.reserve(specs.size());
  for (const QuerySpec& spec : specs) futures.push_back(Submit(spec, shared));
  return futures;
}

std::vector<std::future<Result<ReleaseResult>>> Session::SubmitBatch(
    const QuerySpec& spec, const std::vector<StateSequence>& batch) {
  std::vector<std::future<Result<ReleaseResult>>> futures;
  futures.reserve(batch.size());
  for (const StateSequence& data : batch) futures.push_back(Submit(spec, data));
  return futures;
}

double Session::EpsilonSpent() const {
  MutexLock lock(mutex_);
  return accountant_.TotalEpsilon();
}

double Session::EpsilonRemaining() const {
  MutexLock lock(mutex_);
  return std::max(0.0, options_.epsilon_budget - accountant_.TotalEpsilon());
}

std::size_t Session::num_releases() const {
  MutexLock lock(mutex_);
  return accountant_.num_releases();
}

}  // namespace pf
