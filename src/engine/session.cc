#include "engine/session.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/failpoint.h"
#include "common/random.h"

namespace pf {

namespace {

/// The quilt identity a release is accounted under. Chain mechanisms use
/// their active quilt (the Theorem 4.4 object; the stationary search makes
/// it represent every node). General-network plans fold *all* per-node
/// active quilts into one signature-carrying quilt — Definition 4.5's
/// precondition covers every S_{Q,i}, so a mismatch at any node must
/// refuse composition, not just one at the worst node. The remaining
/// mechanisms get a kind-tagged placeholder so releases of the same
/// (mechanism, model) ledger together but never alias a real quilt.
MarkovQuilt PlanActiveQuilt(const MechanismPlan& plan) {
  switch (plan.kind) {
    case MechanismKind::kMqmExact:
    case MechanismKind::kMqmApprox:
      return plan.chain.active_quilt;
    case MechanismKind::kMqmGeneral: {
      MarkovQuilt all;
      all.target = -1 - static_cast<int>(plan.kind);
      for (const QuiltScore& per_node : plan.mqm.active) {
        all.quilt.push_back(per_node.quilt.target);
        all.quilt.insert(all.quilt.end(), per_node.quilt.quilt.begin(),
                         per_node.quilt.quilt.end());
        all.quilt.push_back(
            -2 - static_cast<int>(per_node.quilt.nearby_count));  // Separator.
      }
      return all;
    }
    default:
      break;
  }
  MarkovQuilt tag;
  tag.target = -1 - static_cast<int>(plan.kind);
  return tag;
}

std::future<Result<ReleaseResult>> ReadyError(Status status) {
  std::promise<Result<ReleaseResult>> promise;
  promise.set_value(Result<ReleaseResult>(std::move(status)));
  return promise.get_future();
}

std::future<Result<BatchReleaseResult>> ReadyBatchError(Status status) {
  std::promise<Result<BatchReleaseResult>> promise;
  promise.set_value(Result<BatchReleaseResult>(std::move(status)));
  return promise.get_future();
}

/// Structural equality of what the ledger hashes (QuiltSignature encodes
/// exactly target, quilt, and nearby_count): true iff two plans' releases
/// would ledger under the same active quilt.
bool SameQuiltIdentity(const MarkovQuilt& a, const MarkovQuilt& b) {
  return a.target == b.target && a.nearby_count == b.nearby_count &&
         a.quilt == b.quilt;
}

StateSequence SliceWindow(const StateSequence& data, std::size_t offset,
                          std::size_t length) {
  const auto begin = data.begin() + static_cast<std::ptrdiff_t>(offset);
  return StateSequence(begin, begin + static_cast<std::ptrdiff_t>(length));
}

}  // namespace

Session::Session(PrivacyEngine* engine, const SessionOptions& options)
    : engine_(engine),
      options_(options),
      seed_(options.seed.has_value() ? *options.seed
                                     : engine->NextSessionSeed()),
      in_flight_(std::make_shared<std::atomic<std::size_t>>(0)) {}

Status Session::AdmitInFlight() {
  const std::size_t cap = options_.max_in_flight;
  if (cap == 0) {
    in_flight_->fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  std::size_t current = in_flight_->load(std::memory_order_relaxed);
  while (true) {
    if (current >= cap) {
      return Status::Unavailable(
          "session in-flight cap reached (" + std::to_string(current) +
          " >= " + std::to_string(cap) +
          "); retry after outstanding releases complete");
    }
    // CAS keeps the cap exact under concurrent Submit calls: a plain
    // fetch_add could admit cap+1 tasks between the load and the bump.
    if (in_flight_->compare_exchange_weak(current, current + 1,
                                          std::memory_order_relaxed)) {
      return Status::OK();
    }
  }
}

Result<std::uint64_t> Session::ChargeLocked(const MechanismPlan& plan) {
  // A plan that can never release (GK16 outside its spectral condition, a
  // non-finite noise scale) must be refused *before* charging: the failed
  // release would produce nothing, so it must not burn budget.
  if (!plan.applicable) {
    return Status::FailedPrecondition(
        std::string(MechanismKindName(plan.kind)) +
        " is inapplicable for this model class (no finite noise scale); "
        "nothing was charged");
  }
  if (!std::isfinite(plan.sigma) || plan.sigma < 0.0) {
    return Status::FailedPrecondition(
        "plan has no finite noise scale; nothing was charged");
  }
  // Price the release before committing it: K+1 releases compose to
  // (K+1) * max epsilon (Theorem 4.4). Admission uses the shared
  // deterministic tie rule (ComposedBudgetAdmits): floating-point dust at
  // exact-fit boundaries like B = 0.3, eps = 0.1 is forgiven, genuine
  // overruns never are, so a budget of B admits exactly floor(B / eps)
  // equal-epsilon releases on every platform.
  const double max_epsilon = std::max(accountant_.MaxEpsilon(), plan.epsilon);
  const double budget = options_.epsilon_budget;
  if (!ComposedBudgetAdmits(accountant_.num_releases() + 1, max_epsilon,
                            budget)) {
    const double prospective =
        static_cast<double>(accountant_.num_releases() + 1) * max_epsilon;
    return Status::ResourceExhausted(
        "privacy budget exhausted: this release would compose to epsilon " +
        std::to_string(prospective) + " > budget " + std::to_string(budget));
  }
  // Records only if the active quilt matches every earlier release
  // (Theorem 4.4's precondition); a mismatch refuses with
  // FailedPrecondition and charges nothing.
  PF_RETURN_NOT_OK(
      accountant_.RecordReleaseStrict(plan.epsilon, PlanActiveQuilt(plan)));
  return next_ticket_++;
}

Result<ReleaseResult> Session::Execute(const PrivacyEngine::CompiledQuery& q,
                                       const StateSequence& data,
                                       std::uint64_t seed,
                                       std::uint64_t ticket) {
  // Fires after the charge (the body runs post-ticketing): the torture
  // tests pin that an execute-side failure surfaces as a typed Status on
  // the future, never a crash, and that the ledger stays consistent.
  PF_FAILPOINT("session.execute");
  Vector truth = q.query.fn(data);
  if (q.query.dim != 0 && truth.size() != q.query.dim) {
    // Unlike the statically-detectable refusals in ChargeLocked, this can
    // only surface after the budget was charged (the body runs on the
    // pool, after ticketing). The charge stands: overcharging a
    // contract-violating query is privacy-safe; refunding would require
    // sessions to outlive their futures.
    return Status::Internal("query '" + q.query.name + "' returned dimension " +
                            std::to_string(truth.size()) + ", declared " +
                            std::to_string(q.query.dim) +
                            " (epsilon was charged)");
  }
  Rng rng(TicketNoiseSeed(seed, ticket));
  // The charge is structurally upstream: Execute only runs with a `ticket`
  // already issued by ChargeLocked (every caller is a Release overload or
  // the SubmitCompiled task body, both of which charge before invoking
  // it), so no in-function charge can or should dominate this release.
  // pf:allow(budget-flow): ticket proves the charge happened upstream
  PF_ASSIGN_OR_RETURN(Vector noisy, ReleaseVector(*q.plan, truth,
                                                  q.query.lipschitz, &rng));
  ReleaseResult result;
  result.value = std::move(noisy);
  result.epsilon = q.plan->epsilon;
  result.sigma = q.plan->sigma;
  result.mechanism = q.plan->kind;
  result.ticket = ticket;
  return result;
}

Result<ReleaseResult> Session::Release(const QuerySpec& spec,
                                       const StateSequence& data) {
  PF_ASSIGN_OR_RETURN(PrivacyEngine::CompiledQuery compiled,
                      engine_->Compile(spec));
  std::uint64_t ticket = 0;
  {
    MutexLock lock(mutex_);
    PF_ASSIGN_OR_RETURN(ticket, ChargeLocked(*compiled.plan));
  }
  return Execute(compiled, data, seed_, ticket);
}

Result<ReleaseResult> Session::Release(const QuerySpec& spec,
                                       const StateSequence& data,
                                       const DataWindow& window) {
  PF_ASSIGN_OR_RETURN(const auto span, ResolveDataWindow(window, data.size()));
  PF_ASSIGN_OR_RETURN(PrivacyEngine::CompiledQuery compiled,
                      engine_->Compile(spec, span.second));
  const StateSequence slice = SliceWindow(data, span.first, span.second);
  std::uint64_t ticket = 0;
  {
    MutexLock lock(mutex_);
    PF_ASSIGN_OR_RETURN(ticket, ChargeLocked(*compiled.plan));
  }
  return Execute(compiled, slice, seed_, ticket);
}

Result<ReleaseResult> Session::Release(const QuerySpec& spec,
                                       const StateSequence& data,
                                       const RequestOptions& request) {
  // Compile() re-checks the deadline, but refusing here keeps the
  // guarantee local: an expired ticket never reaches the charge path.
  if (request.deadline.expired()) {
    return Status::DeadlineExceeded(
        "request deadline already expired; nothing was charged");
  }
  PF_ASSIGN_OR_RETURN(PrivacyEngine::CompiledQuery compiled,
                      engine_->Compile(spec, 0, request));
  std::uint64_t ticket = 0;
  {
    MutexLock lock(mutex_);
    PF_ASSIGN_OR_RETURN(ticket, ChargeLocked(*compiled.plan));
  }
  return Execute(compiled, data, seed_, ticket);
}

Result<ReleaseResult> Session::Release(const QuerySpec& spec,
                                       const StateSequence& data,
                                       const DataWindow& window,
                                       const RequestOptions& request) {
  if (request.deadline.expired()) {
    return Status::DeadlineExceeded(
        "request deadline already expired; nothing was charged");
  }
  PF_ASSIGN_OR_RETURN(const auto span, ResolveDataWindow(window, data.size()));
  PF_ASSIGN_OR_RETURN(PrivacyEngine::CompiledQuery compiled,
                      engine_->Compile(spec, span.second, request));
  const StateSequence slice = SliceWindow(data, span.first, span.second);
  std::uint64_t ticket = 0;
  {
    MutexLock lock(mutex_);
    PF_ASSIGN_OR_RETURN(ticket, ChargeLocked(*compiled.plan));
  }
  return Execute(compiled, slice, seed_, ticket);
}

std::future<Result<ReleaseResult>> Session::Submit(const QuerySpec& spec,
                                                   StateSequence data) {
  return Submit(spec,
                std::make_shared<const StateSequence>(std::move(data)));
}

std::future<Result<ReleaseResult>> Session::Submit(const QuerySpec& spec,
                                                   const StateSequence& data,
                                                   const DataWindow& window) {
  return Submit(spec, data, window, RequestOptions{});
}

std::future<Result<ReleaseResult>> Session::Submit(
    const QuerySpec& spec, const StateSequence& data, const DataWindow& window,
    const RequestOptions& request) {
  if (request.deadline.expired()) {
    return ReadyError(Status::DeadlineExceeded(
        "request deadline already expired; nothing was charged"));
  }
  Result<std::pair<std::size_t, std::size_t>> span =
      ResolveDataWindow(window, data.size());
  if (!span.ok()) return ReadyError(span.status());
  Result<PrivacyEngine::CompiledQuery> compiled =
      engine_->Compile(spec, span.value().second, request);
  if (!compiled.ok()) return ReadyError(compiled.status());
  auto slice = std::make_shared<const StateSequence>(
      SliceWindow(data, span.value().first, span.value().second));
  return SubmitCompiled(std::move(compiled).value(), std::move(slice));
}

std::future<Result<ReleaseResult>> Session::Submit(
    const QuerySpec& spec, std::shared_ptr<const StateSequence> data) {
  return Submit(spec, std::move(data), RequestOptions{});
}

std::future<Result<ReleaseResult>> Session::Submit(
    const QuerySpec& spec, std::shared_ptr<const StateSequence> data,
    const RequestOptions& request) {
  if (request.deadline.expired()) {
    return ReadyError(Status::DeadlineExceeded(
        "request deadline already expired; nothing was charged"));
  }
  Result<PrivacyEngine::CompiledQuery> compiled =
      engine_->Compile(spec, 0, request);
  if (!compiled.ok()) return ReadyError(compiled.status());
  return SubmitCompiled(std::move(compiled).value(), std::move(data));
}

std::future<Result<ReleaseResult>> Session::SubmitCompiled(
    PrivacyEngine::CompiledQuery q, std::shared_ptr<const StateSequence> data) {
  // Admission strictly precedes accounting. The executor slot and the
  // in-flight slot are both claimed before ChargeLocked, so a request shed
  // here resolves to Unavailable with the ledger untouched; once the
  // charge lands, hand-off cannot fail (Submit with a valid permit always
  // enqueues), so a charged ticket always produces a release or a typed
  // execute error — never a silently dropped debit.
  Result<Executor::Permit> permit = engine_->executor().TryAcquire();
  if (!permit.ok()) return ReadyError(permit.status());
  Status admitted = AdmitInFlight();
  if (!admitted.ok()) return ReadyError(std::move(admitted));
  auto in_flight = in_flight_;
#ifdef PF_FAILPOINTS
  // Models a refusal between admission and the charge (e.g. a ledger
  // backend outage): both slots must be returned and nothing charged.
  {
    Status injected = FailpointRegistry::Instance().Evaluate("session.charge");
    if (!injected.ok()) {
      in_flight->fetch_sub(1, std::memory_order_relaxed);
      return ReadyError(std::move(injected));  // Permit released by ~Permit.
    }
  }
#endif
  std::uint64_t ticket = 0;
  {
    MutexLock lock(mutex_);
    Result<std::uint64_t> charged = ChargeLocked(*q.plan);
    if (!charged.ok()) {
      in_flight->fetch_sub(1, std::memory_order_relaxed);
      return ReadyError(charged.status());  // Permit released by ~Permit.
    }
    ticket = charged.value();
  }
  return engine_->executor().Submit(
      std::move(permit).value(),
      [q = std::move(q), data = std::move(data), seed = seed_, ticket,
       in_flight = std::move(in_flight)] {
        Result<ReleaseResult> result = Execute(q, *data, seed, ticket);
        in_flight->fetch_sub(1, std::memory_order_relaxed);
        return result;
      });
}

std::vector<std::future<Result<ReleaseResult>>> Session::SubmitBatch(
    const std::vector<QuerySpec>& specs, const StateSequence& data) {
  // One wrapped copy shared by every task instead of one copy per query,
  // and one compile per unique spec shape instead of one cache probe per
  // row: a 1k-row batch of one shape builds its cache key once.
  auto shared = std::make_shared<const StateSequence>(data);
  std::unordered_map<std::string, Result<PrivacyEngine::CompiledQuery>>
      compiled_by_key;
  std::vector<std::future<Result<ReleaseResult>>> futures;
  futures.reserve(specs.size());
  for (const QuerySpec& spec : specs) {
    std::string key = spec.CacheKey();
    auto it = compiled_by_key.find(key);
    if (it == compiled_by_key.end()) {
      it = compiled_by_key.emplace(std::move(key), engine_->Compile(spec))
               .first;
    }
    if (!it->second.ok()) {
      futures.push_back(ReadyError(it->second.status()));
      continue;
    }
    futures.push_back(SubmitCompiled(it->second.value(), shared));
  }
  return futures;
}

std::vector<std::future<Result<ReleaseResult>>> Session::SubmitBatch(
    const QuerySpec& spec, const std::vector<StateSequence>& batch) {
  std::vector<std::future<Result<ReleaseResult>>> futures;
  futures.reserve(batch.size());
  for (const StateSequence& data : batch) futures.push_back(Submit(spec, data));
  return futures;
}

Result<std::uint64_t> Session::ChargeBatchLocked(
    const CompiledBatchPlan& plan) {
  const std::size_t rows = plan.num_rows();
  // Every unique plan must be releasable before anything is recorded
  // (mirrors ChargeLocked): a batch containing one inapplicable row would
  // otherwise burn budget on releases that can never be produced.
  for (const CompiledBatchQuery& q : plan.compiled) {
    const MechanismPlan& mp = *q.plan;
    if (!mp.applicable) {
      return Status::FailedPrecondition(
          std::string(MechanismKindName(mp.kind)) +
          " is inapplicable for this model class (no finite noise scale); "
          "the batch was refused whole and nothing was charged");
    }
    if (!std::isfinite(mp.sigma) || mp.sigma < 0.0) {
      return Status::FailedPrecondition(
          "plan has no finite noise scale; the batch was refused whole and "
          "nothing was charged");
    }
  }
  // Theorem 4.4's precondition, checked structurally across the batch
  // before touching the ledger: every row must release under one active
  // quilt. The accountant re-checks the (single) batch quilt against the
  // ledger's recorded identity inside RecordBatchStrict.
  const MarkovQuilt quilt = PlanActiveQuilt(*plan.compiled.front().plan);
  for (std::size_t u = 1; u < plan.compiled.size(); ++u) {
    if (!SameQuiltIdentity(quilt, PlanActiveQuilt(*plan.compiled[u].plan))) {
      return Status::FailedPrecondition(
          "batch mixes active quilts (rows would compose under different "
          "Theorem 4.4 objects); the batch was refused whole and nothing "
          "was charged");
    }
  }
  // Price the WHOLE batch as one composed charge: K existing releases plus
  // `rows` new ones compose to (K + rows) * max epsilon. Admitting the
  // batch at the composed level is equivalent to admitting each row
  // sequentially (every intermediate composed level is bounded by the
  // final one), so columnar and scalar submission admit exactly the same
  // prefixes of work.
  std::vector<double> epsilons;
  epsilons.reserve(rows);
  double batch_max = 0.0;
  for (std::size_t r = 0; r < rows; ++r) {
    const double eps =
        plan.compiled[plan.logical.row_to_unique[r]].plan->epsilon;
    epsilons.push_back(eps);
    batch_max = std::max(batch_max, eps);
  }
  const double max_epsilon = std::max(accountant_.MaxEpsilon(), batch_max);
  const double budget = options_.epsilon_budget;
  if (!ComposedBudgetAdmits(accountant_.num_releases() + rows, max_epsilon,
                            budget)) {
    const double prospective =
        static_cast<double>(accountant_.num_releases() + rows) * max_epsilon;
    return Status::ResourceExhausted(
        "privacy budget exhausted: this batch of " + std::to_string(rows) +
        " releases would compose to epsilon " + std::to_string(prospective) +
        " > budget " + std::to_string(budget) + "; nothing was charged");
  }
  PF_RETURN_NOT_OK(accountant_.RecordBatchStrict(epsilons, quilt));
  const std::uint64_t first = next_ticket_;
  next_ticket_ += rows;
  return first;
}

std::future<Result<BatchReleaseResult>> Session::SubmitColumnar(
    const BatchQuerySpec& batch, const StateSequence& data) {
  return SubmitColumnar(batch, data, RequestOptions{});
}

std::future<Result<BatchReleaseResult>> Session::SubmitColumnar(
    const BatchQuerySpec& batch, const StateSequence& data,
    const RequestOptions& request) {
  if (request.deadline.expired()) {
    return ReadyBatchError(Status::DeadlineExceeded(
        "request deadline already expired; nothing was charged"));
  }
  // Compile (all-or-nothing, one engine compile per unique shape) before
  // claiming any serving resources: a batch that cannot compile should not
  // occupy an executor slot.
  Result<CompiledBatchPlan> compiled =
      CompileBatchPlan(engine_, batch, data.size(), request);
  if (!compiled.ok()) return ReadyBatchError(compiled.status());
  // Admission strictly precedes accounting, in the same order as
  // SubmitCompiled: executor permit, in-flight slot, THEN the batch
  // charge. A batch shed at either gate resolves to Unavailable with the
  // ledger untouched; once the charge lands, hand-off cannot fail.
  Result<Executor::Permit> permit = engine_->executor().TryAcquire();
  if (!permit.ok()) return ReadyBatchError(permit.status());
  Status admitted = AdmitInFlight();
  if (!admitted.ok()) return ReadyBatchError(std::move(admitted));
  auto in_flight = in_flight_;
#ifdef PF_FAILPOINTS
  // Same refusal window as the scalar path: a ledger outage between
  // admission and the charge returns both slots and charges nothing.
  {
    Status injected = FailpointRegistry::Instance().Evaluate("session.charge");
    if (!injected.ok()) {
      in_flight->fetch_sub(1, std::memory_order_relaxed);
      return ReadyBatchError(std::move(injected));  // Permit self-releases.
    }
  }
#endif
  std::uint64_t first_ticket = 0;
  {
    MutexLock lock(mutex_);
    Result<std::uint64_t> charged = ChargeBatchLocked(compiled.value());
    if (!charged.ok()) {
      in_flight->fetch_sub(1, std::memory_order_relaxed);
      return ReadyBatchError(charged.status());  // Permit self-releases.
    }
    first_ticket = charged.value();
  }
  auto plan = std::make_shared<const CompiledBatchPlan>(
      std::move(compiled).value());
  auto shared = std::make_shared<const StateSequence>(data);
  return engine_->executor().Submit(
      std::move(permit).value(),
      [plan = std::move(plan), shared = std::move(shared), seed = seed_,
       first_ticket, in_flight = std::move(in_flight)] {
        Result<BatchReleaseResult> result =
            ExecuteBatchPlan(*plan, *shared, seed, first_ticket);
        in_flight->fetch_sub(1, std::memory_order_relaxed);
        return result;
      });
}

double Session::EpsilonSpent() const {
  MutexLock lock(mutex_);
  return accountant_.TotalEpsilon();
}

double Session::EpsilonRemaining() const {
  MutexLock lock(mutex_);
  return std::max(0.0, options_.epsilon_budget - accountant_.TotalEpsilon());
}

std::size_t Session::num_releases() const {
  MutexLock lock(mutex_);
  return accountant_.num_releases();
}

}  // namespace pf
