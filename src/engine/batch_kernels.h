// Vectorized execution kernels for the columnar batch-serving path. The
// physical batch plan (engine/batch_plan.h) lowers every derivable query
// shape onto two data-parallel primitives:
//
//   AggregateStates   one pass over the (windowed) record computing the
//                     integer statistics every built-in query kind derives
//                     from: the state sum, the per-state count histogram,
//                     and exact-match counts for requested states
//   ClipScales        the per-row Lipschitz calibration ("clip") stage:
//                     scales[i] = lipschitz[i] * sigma[i]
//
// Both dispatch over the runtime SimdLevel seam (common/matrix.h): the
// portable kernel is the reference, the AVX2 kernel is 8-wide (int32) /
// 4-wide (double). Bit-identity across levels is structural, not hoped
// for: AggregateStates is pure integer arithmetic (sums and counts are
// associative and exact, so lane order cannot change the result), and
// ClipScales is elementwise with one rounding per element. The
// scalar-vs-columnar suite re-verifies both at every level.
//
// This file is on pf-analyzer's bit-exact-pinned list (determinism pass):
// no unordered iteration, no unseeded randomness, no FMA contraction.
#ifndef PUFFERFISH_ENGINE_BATCH_KERNELS_H_
#define PUFFERFISH_ENGINE_BATCH_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pf {

/// What one aggregation pass must compute for a window of the record.
struct AggregateSpec {
  /// Histogram bins to count; 0 when no histogram-shaped row needs them.
  std::size_t k = 0;
  /// Compute the integer state sum (sum/mean rows).
  bool need_sum = false;
  /// Distinct exact-match targets (one per StateFrequency state). Matched
  /// literally against the data — including states outside [0, k) — so the
  /// derived frequency is bit-identical to the scalar query's match loop.
  std::vector<int> match_states;
};

/// Output of one aggregation pass. `counts` and `match_counts` are
/// caller-provided buffers of spec.k and spec.match_states.size() entries.
struct AggregateStats {
  /// sum_t data[t], exact in int64 (the scalar path's double accumulation
  /// is exact below 2^53, where the two agree bit for bit; a record whose
  /// running state sum exceeds 2^53 is out of this engine's envelope).
  std::int64_t sum = 0;
  /// Any state outside [0, k) (meaningful only when spec.k > 0). The
  /// histogram derive stage then releases the all-zero vector, matching
  /// the scalar CountHistogramQuery's ValueOr fallback bit for bit.
  bool out_of_range = false;
  std::int64_t* counts = nullptr;
  std::int64_t* match_counts = nullptr;
};

/// \brief One pass over data[0, n) computing `spec`'s statistics into
/// `stats` (whose counts/match_counts buffers must be sized per the spec).
/// Runtime-dispatched over ActiveSimdLevel(); every level is bit-identical
/// (integer arithmetic only).
void AggregateStates(const int* data, std::size_t n, const AggregateSpec& spec,
                     AggregateStats* stats);

/// \brief The clip stage: scales[i] = lipschitz[i] * sigmas[i] for i in
/// [0, n). Elementwise (one rounding per entry), so every SimdLevel is
/// bit-identical.
void ClipScales(const double* lipschitz, const double* sigmas, std::size_t n,
                double* scales);

/// \brief The noise stage: for each row r in [0, rows), adds independent
/// Laplace noise of scale scales[r] to values[offsets[r], offsets[r+1]),
/// drawn from a fresh generator seeded with seeds[r]. Bit-identical by
/// construction to the scalar release loop
///
///   Rng rng(seeds[r]);
///   AddLaplaceNoise(values + offsets[r], offsets[r+1] - offsets[r],
///                   scales[r], &rng);
///
/// for every row: each row consumes the exact mt19937_64 +
/// uniform_real_distribution<double>(0, 1) draw sequence (pinned against
/// std:: by the batch-kernels replica test and the scalar-vs-columnar
/// suite). What changes is scheduling only: the per-row generator setup —
/// 312 serial seeding multiplies plus the first twist, the dominant cost
/// of one-ticket-one-stream serving — runs interleaved across groups of
/// rows so the independent recurrences pipeline. Not SIMD-dispatched:
/// every SimdLevel runs this same integer code.
void BatchLaplaceNoise(double* values, const std::size_t* offsets,
                       const double* scales, const std::uint64_t* seeds,
                       std::size_t rows);

}  // namespace pf

#endif  // PUFFERFISH_ENGINE_BATCH_KERNELS_H_
