// The front door of the library: a budget-aware, declarative serving API
// over the mechanism engine.
//
//     ModelSpec (what the adversary may believe)
//        |
//     PrivacyEngine::Create          picks the mechanism (policy or
//        |                           override), owns the AnalysisCache and
//        |                           the serving thread pool
//        v
//     engine->CreateSession(budget)  per-tenant ledger (Theorem 4.4)
//        |
//     session->Submit(QuerySpec, data)   compile once (cached), charge the
//        |                               budget, release on the pool
//        v
//     future<Result<ReleaseResult>>
//
// The mechanism layer (pufferfish/mechanism.h) stays available as the
// internal SPI; everything a caller needs for serving lives here.
#ifndef PUFFERFISH_ENGINE_PRIVACY_ENGINE_H_
#define PUFFERFISH_ENGINE_PRIVACY_ENGINE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/deadline.h"
#include "common/memory_stats.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/executor.h"
#include "engine/query_spec.h"
#include "graphical/bayesian_network.h"
#include "graphical/markov_chain.h"
#include "pufferfish/analysis_cache.h"
#include "pufferfish/framework.h"
#include "pufferfish/mechanism.h"
#include "pufferfish/wasserstein_mechanism.h"

namespace pf {

class Session;
struct SessionOptions;

/// \brief The distribution class Theta, declaratively: what the engine
/// builds its mechanism from. Construct via the factories.
struct ModelSpec {
  enum class Kind {
    kChainClass,             ///< Explicit Markov chains, fixed length.
    kChainClassFreeInitial,  ///< Transition matrices x all initials (C.4).
    kChainSummary,           ///< Mixing summary (pi_min, g) only.
    kNetworkClass,           ///< General Bayesian networks.
    kOutputPairs,            ///< Conditional output pairs (Algorithm 1).
    kSensitivity,            ///< Plain L1 sensitivity (entry DP).
    kGroupSensitivity,       ///< Group sensitivity (Definition B.1).
  };

  Kind kind = Kind::kChainClass;
  std::vector<MarkovChain> chains;
  std::vector<Matrix> transitions;
  ChainClassSummary summary;
  std::vector<BayesianNetwork> networks;
  std::vector<ConditionalOutputPair> pairs;
  double sensitivity = 0.0;
  /// Record length T (chains), node count (networks), 0 when lengthless.
  std::size_t length = 0;
  /// State-space size k; 0 when the model carries no state space.
  std::size_t num_states = 0;

  static ModelSpec ChainClass(std::vector<MarkovChain> thetas,
                              std::size_t length);
  static ModelSpec ChainClassFreeInitial(std::vector<Matrix> transitions,
                                         std::size_t length);
  static ModelSpec ChainSummary(ChainClassSummary summary,
                                std::size_t num_states, std::size_t length);
  static ModelSpec NetworkClass(std::vector<BayesianNetwork> thetas);
  static ModelSpec OutputPairs(std::vector<ConditionalOutputPair> pairs);
  static ModelSpec Sensitivity(double sensitivity);
  static ModelSpec GroupSensitivity(double group_sensitivity);

  const char* KindName() const;
};

/// Engine-wide knobs. Defaults serve: auto mechanism policy, hardware
/// threads, bounded plan cache.
struct EngineOptions {
  /// Explicit mechanism override; nullopt selects by policy (see
  /// SelectMechanism). Overrides incompatible with the model fail Create.
  std::optional<MechanismKind> mechanism;
  /// Serving + analysis worker threads; 0 means hardware concurrency.
  std::size_t num_threads = 0;
  /// AnalysisCache capacity (plans resident); 0 means unbounded.
  std::size_t cache_capacity = 1024;
  /// Quilt-width cap for MQMExact searches.
  std::size_t exact_max_nearby = 64;
  /// Quilt-width cap for MQMApprox; 0 = Lemma 4.9 automatic width.
  std::size_t approx_max_nearby = 0;
  /// Permit the Section 4.4.1 stationary-initial shortcut.
  bool allow_stationary_shortcut = true;
  /// Auto policy: chain classes longer than this use MQMApprox (whose
  /// analysis is length-independent) instead of MQMExact.
  std::size_t approx_length_cutoff = 100000;
  /// Separator-size cap for the exhaustive general-network quilt search
  /// (Algorithm 2 on small networks).
  std::size_t max_quilt_size = 2;
  /// Radius / sphere-size caps for the separator-driven quilt search that
  /// large networks switch to (see SeparatorQuilts).
  SeparatorSearchOptions network_separator;
  /// Inference backend for general-network (Algorithm 2) max-influence
  /// conditionals; kAuto resolves to variable elimination, whose cost is
  /// exponential only in the network's induced treewidth.
  InferenceBackend network_backend = InferenceBackend::kAuto;
  /// Auto policy: NetworkClass models whose min-fill induced width (a
  /// treewidth upper bound) exceeds this are refused at Create — the
  /// elimination tables would be exponential in it. Structured models
  /// (trees, stars, grids) pass at any node count; an explicit
  /// `mechanism` override bypasses the screen.
  std::size_t network_width_cutoff = 16;
  /// Backend for the W_inf computation (Algorithm 1 models).
  WassersteinBackend wasserstein_backend = WassersteinBackend::kQuantile;
  /// Executor queue bound: submissions beyond this many waiting tasks are
  /// shed with Unavailable (see ExecutorOptions::max_queue_depth; 0 =
  /// unbounded).
  std::size_t max_queue_depth = 1024;
  /// Cold-analysis fast-fail: when > 0 and the executor queue is at least
  /// this deep, a Compile whose plan is NOT already cached is shed with
  /// Unavailable instead of running a cold sigma analysis — warm (cached)
  /// traffic keeps serving at full speed under overload, and cold requests
  /// recover as soon as the queue drains. 0 disables the policy.
  std::size_t shed_cold_queue_depth = 0;
  /// Upper bound in milliseconds on any single sigma analysis launched by
  /// Compile/AnalyzeStats, enforced at the cooperative checkpoints in the
  /// analysis loops (DeadlineExceeded past it). Combines with a per-request
  /// deadline (the tighter one wins). 0 = no engine-wide bound.
  std::int64_t analysis_timeout_ms = 0;
};

/// \brief Per-request serving constraints, carried through Compile and
/// Session::Submit/Release. Default-constructed options impose nothing.
struct RequestOptions {
  /// Give up past this point: refused up front (before any budget charge)
  /// when already expired, and honored mid-analysis at the cooperative
  /// checkpoints (power ladder, node scans, variable elimination).
  Deadline deadline;
  /// When false the request is only willing to be served from cached
  /// plans: a Compile that would need a cold sigma analysis returns
  /// Unavailable immediately (the caller's own fast-fail knob, independent
  /// of EngineOptions::shed_cold_queue_depth).
  bool allow_cold_analysis = true;
};

/// \brief The mechanism the policy picks for `model` under `options`
/// (honoring options.mechanism when set). Exposed for tests and logs;
/// PrivacyEngine::Create applies the same rule.
///
/// Policy: chain classes use MQMExact up to options.approx_length_cutoff
/// and MQMApprox beyond (Lemma 4.9 makes its analysis length-independent);
/// summaries use MQMApprox; networks use the general MQM; output pairs use
/// the Wasserstein mechanism; sensitivities use the Laplace baselines.
Result<MechanismKind> SelectMechanism(const ModelSpec& model,
                                      const EngineOptions& options);

/// \brief Owns the model, the selected mechanism, the plan cache, the
/// compiled-query cache, and the serving thread pool. Immutable after
/// Create apart from the caches and the record length (which
/// AppendObservations / SetRecordLength hot-swap under a lock); safe to
/// share across threads. Must outlive its Sessions.
class PrivacyEngine {
 public:
  /// A query compiled against the engine's model: the concrete vector
  /// query plus the (cached) plan serving it.
  struct CompiledQuery {
    VectorQuery query;
    std::shared_ptr<const MechanismPlan> plan;
  };

  static Result<std::unique_ptr<PrivacyEngine>> Create(
      ModelSpec model, EngineOptions options = {});

  PrivacyEngine(const PrivacyEngine&) = delete;
  PrivacyEngine& operator=(const PrivacyEngine&) = delete;

  /// The currently selected mechanism kind (policy or override; may change
  /// across SetRecordLength when the length crosses approx_length_cutoff).
  MechanismKind mechanism_kind() const;
  /// SPI escape hatch: a snapshot of the underlying mechanism (for
  /// diagnostics). Snapshots stay valid across hot-swaps.
  std::shared_ptr<const Mechanism> mechanism() const;

  std::size_t num_states() const { return num_states_; }
  /// Current record length T (grows under AppendObservations).
  std::size_t record_length() const;
  const EngineOptions& options() const { return options_; }
  /// Resolved worker-thread count (options.num_threads or hardware).
  std::size_t num_threads() const { return executor_.num_threads(); }

  /// \brief Grows the model's record length by `delta` observations — the
  /// streaming / continual-release path. The compiled-query cache is
  /// invalidated (compiled Lipschitz constants and plans are
  /// length-dependent), but cached MQMExact analyses are NOT discarded:
  /// the next Compile at the new length EXTENDS the retained resumable
  /// analysis (AnalysisCache::GetOrExtend), which costs O(max_nearby +
  /// delta) instead of a cold O(T) re-analysis and is bit-identical to
  /// one. Sessions opened before the append keep their spent budget;
  /// releases they make afterwards are priced on the new plan, and the
  /// Theorem 4.4 ledger refuses them (FailedPrecondition) if the new
  /// active quilt differs from the session's earlier releases — open a
  /// session per append epoch, or use sliding-window queries from a fresh
  /// session, to compose soundly.
  Status AppendObservations(std::size_t delta);

  /// \brief Hot-swaps the record length outright (same semantics as
  /// AppendObservations; shrinking re-analyzes cold since analyses only
  /// extend forward). Only models with a chain length dimension support
  /// this; the mechanism is re-selected by policy, so crossing
  /// approx_length_cutoff may switch MQMExact <-> MQMApprox.
  Status SetRecordLength(std::size_t new_length);

  /// \brief Compiles a declarative query to (VectorQuery, MechanismPlan),
  /// analyzing at the spec's epsilon at most once per (model, epsilon):
  /// both the plan (AnalysisCache) and the compiled pair are cached.
  Result<CompiledQuery> Compile(const QuerySpec& spec);

  /// \brief Compiles `spec` against a window of `window_length`
  /// observations instead of the full record: built-in Lipschitz constants
  /// that depend on the record length (mean, frequencies) are derived from
  /// the window length — a window query is exactly that much more
  /// sensitive per record — while the plan (noise calibration) is the full
  /// model's. window_length = 0 means the full record; longer than the
  /// record is InvalidArgument.
  Result<CompiledQuery> Compile(const QuerySpec& spec,
                                std::size_t window_length);

  /// \brief Compile under per-request constraints: an already-expired
  /// deadline is refused with DeadlineExceeded before any work, a deadline
  /// (or EngineOptions::analysis_timeout_ms) expiring mid-analysis cancels
  /// it at the next checkpoint, and cold analyses are shed with
  /// Unavailable under the overload policy (see RequestOptions and
  /// EngineOptions::shed_cold_queue_depth). Failure messages chain context
  /// back to the root cause.
  Result<CompiledQuery> Compile(const QuerySpec& spec,
                                std::size_t window_length,
                                const RequestOptions& request);

  /// \brief Opens a per-tenant session with its own privacy budget and RNG
  /// seed. The engine must outlive the session.
  std::unique_ptr<Session> CreateSession(const SessionOptions& options);
  std::unique_ptr<Session> CreateSession();

  /// Plan-cache statistics (hits prove re-analysis was skipped).
  AnalysisCache::Stats cache_stats() const { return cache_.stats(); }

  /// \brief Analysis-cost diagnostics of a plan: how much work the sigma
  /// analysis did and what its tables held. MQMExact plans fill the node
  /// and ladder numbers; MQM-general (network) plans fill the node,
  /// treewidth, and factor-table numbers; MQMApprox (whose Lemma 4.9
  /// analysis is already length-independent) and the remaining mechanisms
  /// report zeros.
  struct AnalysisStats {
    /// Nodes the sigma_i loop covered: T per theta for chains, the node
    /// count for networks.
    std::size_t total_nodes = 0;
    /// sigma_i evaluations actually performed (dedup classes).
    std::size_t scored_nodes = 0;
    /// total_nodes / scored_nodes: work saved by the dedup scan (marginal
    /// keys on chains, canonical node classes on networks).
    double dedup_ratio = 1.0;
    /// Unified memory accounting of the analysis: `peak_bytes` is the peak
    /// resident analysis tables (power ladder + maximization tables +
    /// class store for chain plans; largest live factor-table set for
    /// network plans), `arena_retained_bytes` the buffers retained for
    /// reuse by the next analysis, and `mallocs` the tracked
    /// heap-acquisition events of the pass — 0 on a warm steady-state
    /// re-analysis (the zero-allocation hot path).
    MemoryStats memory;
    /// True when the Section 4.4.1 stationary shortcut served the plan.
    bool used_stationary_shortcut = false;
    /// Network plans: largest elimination clique (minus one) the influence
    /// inferences actually materialized. 0 under the enumeration backend.
    std::size_t induced_width = 0;
    /// Network plans: min-fill induced width of the (union) moral graph —
    /// the treewidth upper bound the selection policy screened against.
    std::size_t treewidth_bound = 0;
  };

  /// \brief Stats for the plan serving `epsilon`, analyzing (or hitting
  /// the cache) exactly like Compile does.
  Result<AnalysisStats> AnalyzeStats(double epsilon);

  /// \brief Writes every cached plan to a warm-restart snapshot at `path`
  /// (atomically: temp file + rename; see pufferfish/plan_store.h for the
  /// format). A fresh engine over the same model restores them with
  /// LoadAnalyses, turning its first Compile per epsilon into a cache hit
  /// instead of a cold analysis.
  Status SaveAnalyses(const std::string& path) const;

  /// \brief Loads a snapshot saved by SaveAnalyses into the plan cache and
  /// returns the number of plans imported. Plans are keyed by (model
  /// fingerprint, epsilon, kind), so entries from other models or
  /// configurations simply never hit — loading a stale snapshot is safe,
  /// just useless. Corrupt, truncated, or version-mismatched snapshots are
  /// rejected whole (the engine then starts cold, which is always
  /// correct). Resumable chain scan state is not persisted: after a load,
  /// the first AppendObservations re-seeds it with one cold analysis and
  /// appends are incremental from then on.
  Result<std::size_t> LoadAnalyses(const std::string& path);

  /// \brief A seed for a session that did not pin one: distinct per call
  /// (sequence scrambled from a random per-engine base), so default
  /// sessions never share a noise stream — see SessionOptions::seed.
  std::uint64_t NextSessionSeed();

  /// The serving pool (Sessions dispatch Submit() work here).
  Executor& executor() { return executor_; }

 private:
  PrivacyEngine(ModelSpec model, EngineOptions options,
                std::unique_ptr<Mechanism> mechanism, std::size_t num_threads);

  /// Body of SetRecordLength.
  Status SetRecordLengthLocked(std::size_t new_length)
      PF_REQUIRES(model_mutex_);

  /// Lock order: model_mutex_ before compiled_mutex_ (the hot-swap path
  /// nests them that way); nothing acquires model_mutex_ while holding
  /// compiled_mutex_.
  ///
  /// model_.length and mechanism_ are the only mutable model state; both
  /// are guarded by model_mutex_ (everything else in model_ is immutable
  /// after Create — immutable fields read on unlocked paths are
  /// snapshotted into const members below). model_generation_ tags
  /// compiled-cache entries so a Compile racing a hot-swap can never
  /// insert a stale entry.
  mutable Mutex model_mutex_;
  ModelSpec model_ PF_GUARDED_BY(model_mutex_);
  const EngineOptions options_;
  /// Snapshot of model_.num_states (immutable after Create), readable
  /// without model_mutex_.
  const std::size_t num_states_;
  std::shared_ptr<const Mechanism> mechanism_ PF_GUARDED_BY(model_mutex_);
  /// Atomic so the compiled-cache insert can re-check it without nesting
  /// model_mutex_ inside compiled_mutex_ (the swap path nests the other
  /// way). Written only under model_mutex_.
  std::atomic<std::uint64_t> model_generation_{0};
  AnalysisCache cache_;
  Executor executor_;

  mutable Mutex compiled_mutex_;
  std::unordered_map<std::string, CompiledQuery> compiled_
      PF_GUARDED_BY(compiled_mutex_);
  /// FIFO eviction order for compiled_ (bounded by options_.cache_capacity
  /// like the plan cache: compiled entries pin their plans, so an
  /// unbounded map would defeat the plan cache's memory bound).
  std::deque<std::string> compiled_order_ PF_GUARDED_BY(compiled_mutex_);
  std::atomic<std::uint64_t> session_seed_state_;
};

}  // namespace pf

#endif  // PUFFERFISH_ENGINE_PRIVACY_ENGINE_H_
