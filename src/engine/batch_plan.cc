#include "engine/batch_plan.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/fingerprint.h"
#include "engine/privacy_engine.h"

namespace pf {

namespace {

const char* DeriveOpName(PhysicalBatchPlan::DeriveOp op) {
  switch (op) {
    case PhysicalBatchPlan::DeriveOp::kSum: return "sum";
    case PhysicalBatchPlan::DeriveOp::kMean: return "mean";
    case PhysicalBatchPlan::DeriveOp::kStateFrequency: return "match";
    case PhysicalBatchPlan::DeriveOp::kCountHistogram: return "hist";
    case PhysicalBatchPlan::DeriveOp::kFrequencyHistogram: return "hist*inv";
    case PhysicalBatchPlan::DeriveOp::kEvaluate: return "evaluate";
  }
  return "?";
}

bool IsFullRecord(const DataWindow& w) {
  return !w.from_end && w.offset == 0 && w.length == 0;
}

/// Compact double formatting for Explain (std::to_string pads zeros).
std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

/// CacheKey() equality without the string: the same fields CacheKey()
/// encodes — kind, state, epsilon bit pattern, plus lipschitz/dim/name for
/// custom kinds — compared directly.
bool SameCompiledShape(const QuerySpec& a, const QuerySpec& b) {
  if (a.kind != b.kind || a.state != b.state ||
      DoubleBits(a.epsilon) != DoubleBits(b.epsilon)) {
    return false;
  }
  if (a.kind == QueryKind::kCustomScalar || a.kind == QueryKind::kCustomVector) {
    return DoubleBits(a.lipschitz) == DoubleBits(b.lipschitz) &&
           a.dim == b.dim && a.name == b.name;
  }
  return true;
}

/// Bucket hash over the SameCompiledShape fields plus the window. Purely a
/// dedupe accelerator: collisions are resolved by field comparison, and
/// the hash never reaches any released value or plan ordering.
std::uint64_t ShapeHash(std::size_t window_index, const QuerySpec& spec) {
  std::uint64_t h = SplitMix64(static_cast<std::uint64_t>(window_index) ^
                               (static_cast<std::uint64_t>(spec.kind) << 32));
  h = SplitMix64(h ^ static_cast<std::uint32_t>(spec.state));
  h = SplitMix64(h ^ DoubleBits(spec.epsilon));
  if (spec.kind == QueryKind::kCustomScalar ||
      spec.kind == QueryKind::kCustomVector) {
    h = SplitMix64(h ^ DoubleBits(spec.lipschitz));
    h = SplitMix64(h ^ static_cast<std::uint64_t>(spec.dim));
    h = SplitMix64(h ^ std::hash<std::string>{}(spec.name));
  }
  return h;
}

}  // namespace

Result<std::pair<std::size_t, std::size_t>> ResolveDataWindow(
    const DataWindow& window, std::size_t size) {
  std::size_t offset = window.offset;
  std::size_t length = window.length;
  if (window.from_end) {
    if (length == 0 || length > size) {
      return Status::InvalidArgument(
          "suffix window of " + std::to_string(length) +
          " observations does not fit a record of " + std::to_string(size));
    }
    offset = size - length;
  } else {
    if (offset >= size) {
      return Status::InvalidArgument(
          "window offset " + std::to_string(offset) +
          " is outside the record of " + std::to_string(size));
    }
    if (length == 0) length = size - offset;
    // Overflow-safe form of offset + length > size (offset < size here).
    if (length > size - offset) {
      return Status::InvalidArgument(
          "window [" + std::to_string(offset) + ", " +
          std::to_string(offset + length) + ") exceeds the record of " +
          std::to_string(size));
    }
  }
  return std::make_pair(offset, length);
}

Result<CompiledBatchPlan> CompileBatchPlan(PrivacyEngine* engine,
                                           const BatchQuerySpec& batch,
                                           std::size_t data_size,
                                           const RequestOptions& request) {
  if (batch.empty()) {
    return Status::InvalidArgument("empty batch; nothing to compile");
  }
  CompiledBatchPlan plan;
  LogicalBatchPlan& lg = plan.logical;
  lg.data_size = data_size;
  lg.row_to_unique.reserve(batch.size());

  // The 1/T factors of full-record built-ins come from the engine's record
  // length; snapshot it and verify below that no concurrent append slid it
  // under the compiles (a torn batch would mix constants from two model
  // epochs and match NO scalar run).
  const std::size_t model_length = engine->record_length();

  // Parse + project: resolve windows, dedupe rows onto unique (window,
  // spec) pairs, compile each unique once through the engine's cache.
  // Dedupe hashes the same fields CacheKey() encodes but compares them
  // directly (bucketed, collision-checked) — no per-row string build on
  // the serving hot path; context strings exist only on error returns.
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> unique_buckets;
  for (std::size_t i = 0; i < batch.items.size(); ++i) {
    const BatchQueryItem& item = batch.items[i];

    const bool full = IsFullRecord(item.window);
    std::size_t offset = 0;
    std::size_t length = data_size;
    if (!full) {
      Result<std::pair<std::size_t, std::size_t>> span =
          ResolveDataWindow(item.window, data_size);
      if (!span.ok()) {
        return span.status().WithContext("batch row " + std::to_string(i));
      }
      offset = span.value().first;
      length = span.value().second;
    }
    std::size_t window_index = lg.windows.size();
    for (std::size_t w = 0; w < lg.windows.size(); ++w) {
      if (lg.windows[w].offset == offset && lg.windows[w].length == length &&
          lg.windows[w].full_record == full) {
        window_index = w;
        break;
      }
    }
    if (window_index == lg.windows.size()) {
      lg.windows.push_back({offset, length, full});
    }

    std::vector<std::size_t>& bucket =
        unique_buckets[ShapeHash(window_index, item.spec)];
    std::size_t u = lg.unique.size();
    for (const std::size_t candidate : bucket) {
      if (lg.unique[candidate].window_index == window_index &&
          SameCompiledShape(lg.unique[candidate].spec, item.spec)) {
        u = candidate;
        break;
      }
    }
    if (u == lg.unique.size()) {
      // Full-record rows compile with window_length = 0, exactly like the
      // scalar non-window Submit; windowed rows pass the resolved length,
      // exactly like the scalar windowed Submit.
      Result<PrivacyEngine::CompiledQuery> compiled =
          engine->Compile(item.spec, full ? 0 : length, request);
      if (!compiled.ok()) {
        return compiled.status().WithContext("batch row " + std::to_string(i));
      }
      LogicalBatchPlan::UniqueQuery uq;
      uq.spec = item.spec;
      uq.window_index = window_index;
      uq.dim = compiled.value().query.dim;
      uq.lipschitz = compiled.value().query.lipschitz;
      uq.compile_length = full ? model_length : length;
      bucket.push_back(u);
      lg.unique.push_back(std::move(uq));
      plan.compiled.push_back(
          {std::move(compiled.value().query), std::move(compiled.value().plan)});
    }
    lg.row_to_unique.push_back(u);
    ++lg.unique[u].num_rows;
    lg.total_values += lg.unique[u].dim;
  }

  if (engine->record_length() != model_length) {
    return Status::Unavailable(
        "model record length changed while the batch was compiling; retry "
        "(nothing was charged)");
  }

  // Lower: one aggregation pass per window that any built-in row needs,
  // then a derive node per unique query.
  PhysicalBatchPlan& ph = plan.physical;
  std::vector<std::size_t> window_to_aggregate(lg.windows.size(), kNoNode);
  ph.derives.resize(lg.unique.size());
  for (std::size_t u = 0; u < lg.unique.size(); ++u) {
    const LogicalBatchPlan::UniqueQuery& uq = lg.unique[u];
    PhysicalBatchPlan::DeriveNode& node = ph.derives[u];
    const QueryKind kind = uq.spec.kind;
    if (kind == QueryKind::kCustomScalar || kind == QueryKind::kCustomVector) {
      node.op = PhysicalBatchPlan::DeriveOp::kEvaluate;
      continue;
    }
    std::size_t& agg_index = window_to_aggregate[uq.window_index];
    if (agg_index == kNoNode) {
      agg_index = ph.aggregates.size();
      ph.aggregates.push_back({uq.window_index, AggregateSpec{}});
    }
    AggregateSpec& agg = ph.aggregates[agg_index].spec;
    node.aggregate_index = agg_index;
    switch (kind) {
      case QueryKind::kSum:
        node.op = PhysicalBatchPlan::DeriveOp::kSum;
        agg.need_sum = true;
        break;
      case QueryKind::kMean:
        node.op = PhysicalBatchPlan::DeriveOp::kMean;
        node.inv = 1.0 / static_cast<double>(uq.compile_length);
        agg.need_sum = true;
        break;
      case QueryKind::kStateFrequency: {
        node.op = PhysicalBatchPlan::DeriveOp::kStateFrequency;
        node.inv = 1.0 / static_cast<double>(uq.compile_length);
        std::size_t m = agg.match_states.size();
        for (std::size_t j = 0; j < agg.match_states.size(); ++j) {
          if (agg.match_states[j] == uq.spec.state) {
            m = j;
            break;
          }
        }
        if (m == agg.match_states.size()) {
          agg.match_states.push_back(uq.spec.state);
        }
        node.match_index = m;
        break;
      }
      case QueryKind::kCountHistogram:
        node.op = PhysicalBatchPlan::DeriveOp::kCountHistogram;
        agg.k = uq.dim;
        break;
      case QueryKind::kFrequencyHistogram:
        node.op = PhysicalBatchPlan::DeriveOp::kFrequencyHistogram;
        node.inv = 1.0 / static_cast<double>(uq.compile_length);
        agg.k = uq.dim;
        break;
      default:
        return Status::Internal("unhandled query kind in batch lowering");
    }
  }
  return plan;
}

Result<CompiledBatchPlan> CompileBatchPlan(PrivacyEngine* engine,
                                           const BatchQuerySpec& batch,
                                           std::size_t data_size) {
  return CompileBatchPlan(engine, batch, data_size, RequestOptions{});
}

std::string CompiledBatchPlan::Explain() const {
  const LogicalBatchPlan& lg = logical;
  std::string out = "BatchPlan: " + std::to_string(num_rows()) + " rows -> " +
                    std::to_string(lg.unique.size()) + " unique queries over " +
                    std::to_string(lg.windows.size()) + " windows (" +
                    std::to_string(lg.total_values) + " values)\n";
  out += "logical: project -> window -> clip -> noise\n";
  for (std::size_t w = 0; w < lg.windows.size(); ++w) {
    const LogicalBatchPlan::Window& win = lg.windows[w];
    out += "  w" + std::to_string(w) + ": [" + std::to_string(win.offset) +
           ", " + std::to_string(win.offset + win.length) + ")" +
           (win.full_record ? " (full record)" : "") + "\n";
  }
  for (std::size_t u = 0; u < lg.unique.size(); ++u) {
    const LogicalBatchPlan::UniqueQuery& uq = lg.unique[u];
    out += "  u" + std::to_string(u) + ": " + QueryKindName(uq.spec.kind) +
           " eps=" + FormatDouble(uq.spec.epsilon) +
           " L=" + FormatDouble(uq.lipschitz) +
           " dim=" + std::to_string(uq.dim) + " w" +
           std::to_string(uq.window_index);
    if (u < compiled.size() && compiled[u].plan != nullptr) {
      out += " sigma=" + FormatDouble(compiled[u].plan->sigma);
    }
    if (uq.num_rows > 1) out += " (x" + std::to_string(uq.num_rows) + " rows)";
    out += "\n";
  }
  out += "physical:\n";
  for (std::size_t a = 0; a < physical.aggregates.size(); ++a) {
    const PhysicalBatchPlan::AggregateNode& agg = physical.aggregates[a];
    out += "  a" + std::to_string(a) + " <- aggregate(w" +
           std::to_string(agg.window_index) + "):";
    if (agg.spec.need_sum) out += " sum";
    if (agg.spec.k > 0) out += " hist[k=" + std::to_string(agg.spec.k) + "]";
    if (!agg.spec.match_states.empty()) {
      out += " matches{";
      for (std::size_t m = 0; m < agg.spec.match_states.size(); ++m) {
        if (m > 0) out += ",";
        out += std::to_string(agg.spec.match_states[m]);
      }
      out += "}";
    }
    out += "\n";
  }
  for (std::size_t u = 0; u < physical.derives.size(); ++u) {
    const PhysicalBatchPlan::DeriveNode& node = physical.derives[u];
    out += "  u" + std::to_string(u) + " <- ";
    if (node.op == PhysicalBatchPlan::DeriveOp::kEvaluate) {
      out += "evaluate(fn)";
    } else {
      out += "a" + std::to_string(node.aggregate_index) + "." +
             DeriveOpName(node.op);
      if (node.inv != 0.0) out += " * " + FormatDouble(node.inv);
    }
    out += "\n";
  }
  out += "  clip: scales[r] = L[r] * sigma[r] (simd=" +
         std::string(SimdLevelName(ActiveSimdLevel())) + ")\n";
  out += "  noise: Laplace per coordinate from per-ticket SplitMix streams\n";
  return out;
}

Result<BatchReleaseResult> ExecuteBatchPlan(const CompiledBatchPlan& plan,
                                            const StateSequence& data,
                                            std::uint64_t seed,
                                            std::uint64_t first_ticket) {
  // Post-charge failure surface, like the scalar execute path: the torture
  // tests pin that an injected failure here lands as a typed Status on the
  // batch future, never a crash, with the ledger stable.
  PF_FAILPOINT("batch.execute");
  const LogicalBatchPlan& lg = plan.logical;
  if (data.size() != lg.data_size) {
    return Status::InvalidArgument(
        "batch plan was compiled for a record of " +
        std::to_string(lg.data_size) + " observations, got " +
        std::to_string(data.size()));
  }
  const std::size_t rows = lg.row_to_unique.size();
  RecordBatch batch = RecordBatch::Make(rows, lg.total_values);

  // Offsets (Arrow-style list layout): row i's values span
  // [offsets[i], offsets[i+1]).
  std::size_t* offsets = batch.offsets();
  std::size_t off = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    offsets[i] = off;
    off += lg.unique[lg.row_to_unique[i]].dim;
  }
  offsets[rows] = off;

  // Aggregate: one pass per window (SimdLevel-dispatched, pure integers).
  struct AggOut {
    AggregateStats stats;
    std::vector<std::int64_t> counts;
    std::vector<std::int64_t> matches;
  };
  std::vector<AggOut> agg_out(plan.physical.aggregates.size());
  for (std::size_t a = 0; a < plan.physical.aggregates.size(); ++a) {
    const PhysicalBatchPlan::AggregateNode& node = plan.physical.aggregates[a];
    const LogicalBatchPlan::Window& win = lg.windows[node.window_index];
    AggOut& out = agg_out[a];
    out.counts.assign(node.spec.k, 0);
    out.matches.assign(node.spec.match_states.size(), 0);
    out.stats.counts = out.counts.data();
    out.stats.match_counts = out.matches.data();
    AggregateStates(data.data() + win.offset, win.length, node.spec,
                    &out.stats);
  }

  // Derive each unique query's truth once; rows sharing it copy the staged
  // values (the scalar path recomputes the query per row, deterministically
  // — same values, O(T) more work).
  std::vector<Vector> truth(lg.unique.size());
  std::vector<StateSequence> slices(lg.windows.size());
  std::vector<bool> sliced(lg.windows.size(), false);
  for (std::size_t u = 0; u < lg.unique.size(); ++u) {
    const LogicalBatchPlan::UniqueQuery& uq = lg.unique[u];
    const PhysicalBatchPlan::DeriveNode& node = plan.physical.derives[u];
    Vector& v = truth[u];
    if (node.op == PhysicalBatchPlan::DeriveOp::kEvaluate) {
      const LogicalBatchPlan::Window& win = lg.windows[uq.window_index];
      const StateSequence* src = &data;
      if (!win.full_record &&
          !(win.offset == 0 && win.length == data.size())) {
        if (!sliced[uq.window_index]) {
          const auto begin =
              data.begin() + static_cast<std::ptrdiff_t>(win.offset);
          slices[uq.window_index] =
              StateSequence(begin, begin + static_cast<std::ptrdiff_t>(
                                               win.length));
          sliced[uq.window_index] = true;
        }
        src = &slices[uq.window_index];
      }
      const VectorQuery& q = plan.compiled[u].query;
      v = q.fn(*src);
      if (q.dim != 0 && v.size() != q.dim) {
        // Statically undetectable contract violation, discovered after the
        // batch was charged: the charge stands (overcharging a misdeclared
        // query is privacy-safe), exactly like the scalar execute path.
        return Status::Internal(
            "query '" + q.name + "' returned dimension " +
            std::to_string(v.size()) + ", declared " + std::to_string(q.dim) +
            " (epsilon was charged)");
      }
      continue;
    }
    const AggOut& agg = agg_out[node.aggregate_index];
    switch (node.op) {
      case PhysicalBatchPlan::DeriveOp::kSum:
        v.assign(1, static_cast<double>(agg.stats.sum));
        break;
      case PhysicalBatchPlan::DeriveOp::kMean:
        v.assign(1, static_cast<double>(agg.stats.sum) * node.inv);
        break;
      case PhysicalBatchPlan::DeriveOp::kStateFrequency:
        v.assign(1,
                 static_cast<double>(agg.matches[node.match_index]) * node.inv);
        break;
      case PhysicalBatchPlan::DeriveOp::kCountHistogram:
        v.assign(uq.dim, 0.0);
        if (!agg.stats.out_of_range) {
          for (std::size_t s = 0; s < uq.dim; ++s) {
            v[s] = static_cast<double>(agg.counts[s]);
          }
        }
        break;
      case PhysicalBatchPlan::DeriveOp::kFrequencyHistogram:
        v.assign(uq.dim, 0.0);
        if (!agg.stats.out_of_range) {
          for (std::size_t s = 0; s < uq.dim; ++s) {
            v[s] = static_cast<double>(agg.counts[s]) * node.inv;
          }
        }
        break;
      case PhysicalBatchPlan::DeriveOp::kEvaluate:
        break;  // Handled above.
    }
  }

  // Fill the value buffer and the accounting columns.
  double* values = batch.values();
  double* epsilons = batch.epsilons();
  double* sigmas = batch.sigmas();
  std::uint64_t* tickets = batch.tickets();
  std::vector<double> lipschitz(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    const std::size_t u = lg.row_to_unique[i];
    const Vector& v = truth[u];
    double* row = values + offsets[i];
    for (std::size_t j = 0; j < v.size(); ++j) row[j] = v[j];
    epsilons[i] = plan.compiled[u].plan->epsilon;
    sigmas[i] = plan.compiled[u].plan->sigma;
    lipschitz[i] = lg.unique[u].lipschitz;
    tickets[i] = first_ticket + i;
  }

  // Clip: scales[r] = L[r] * sigma[r], vectorized.
  ClipScales(lipschitz.data(), sigmas, rows, batch.noise_scales());

  // Noise: per-ticket Laplace streams, bit-identical to the scalar path.
  std::vector<std::shared_ptr<const MechanismPlan>> plans;
  plans.reserve(plan.compiled.size());
  for (const CompiledBatchQuery& c : plan.compiled) plans.push_back(c.plan);
  PF_RETURN_NOT_OK(ReleaseBatchColumnar(plans, seed, &batch));

  BatchReleaseResult result;
  result.batch = std::move(batch);
  result.mechanism =
      plans.empty() ? MechanismKind::kLaplaceDp : plans.front()->kind;
  return result;
}

}  // namespace pf
