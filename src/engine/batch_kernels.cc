#include "engine/batch_kernels.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "common/matrix.h"
#include "common/random.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PF_SIMD_X86 1
#include <immintrin.h>
#endif

namespace pf {

namespace {

void AggregatePortable(const int* data, std::size_t n,
                       const AggregateSpec& spec, AggregateStats* stats) {
  const int k = static_cast<int>(spec.k);
  std::int64_t sum = 0;
  bool oor = false;
  std::int64_t* counts = stats->counts;
  std::int64_t* matches = stats->match_counts;
  const std::size_t num_match = spec.match_states.size();
  for (std::size_t t = 0; t < n; ++t) {
    const int v = data[t];
    sum += v;
    if (k > 0) {
      if (v >= 0 && v < k) {
        ++counts[v];
      } else {
        oor = true;
      }
    }
    for (std::size_t m = 0; m < num_match; ++m) {
      matches[m] += (v == spec.match_states[m]) ? 1 : 0;
    }
  }
  stats->sum = sum;  // The sum is free alongside the pass; always report it.
  stats->out_of_range = oor;
}

#ifdef PF_SIMD_X86
// AVX2 aggregate: 8 int32 lanes per step. The state sum widens each half
// to int64 lanes (exact — no overflow below 2^63), the range check ORs a
// per-lane out-of-bounds mask into a sticky accumulator, and each match
// target keeps 8 int32 lane counters (cmpeq yields -1 per matching lane;
// subtracting accumulates +1). The histogram itself stays scalar over the
// already-loaded block — 8 dependent memory increments don't vectorize,
// and the loads are the expensive part. Everything is integer arithmetic,
// so the result is bit-identical to the portable kernel by construction.
__attribute__((target("avx2"))) void AggregateAvx2(const int* data,
                                                   std::size_t n,
                                                   const AggregateSpec& spec,
                                                   AggregateStats* stats) {
  const int k = static_cast<int>(spec.k);
  std::int64_t* counts = stats->counts;
  std::int64_t* matches = stats->match_counts;
  const std::size_t num_match = spec.match_states.size();

  __m256i sum_lo = _mm256_setzero_si256();
  __m256i sum_hi = _mm256_setzero_si256();
  __m256i oor_acc = _mm256_setzero_si256();
  const __m256i zero = _mm256_setzero_si256();
  const __m256i kvec = _mm256_set1_epi32(k);
  // Per-target 8-lane match counters (int32; safe for n < 2^31 per lane,
  // far beyond any record this engine serves).
  __m256i match_acc[8];
  const std::size_t vec_match = num_match <= 8 ? num_match : 8;
  __m256i match_target[8];
  for (std::size_t m = 0; m < vec_match; ++m) {
    match_acc[m] = _mm256_setzero_si256();
    match_target[m] = _mm256_set1_epi32(spec.match_states[m]);
  }

  std::size_t t = 0;
  for (; t + 8 <= n; t += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + t));
    // Widen to 2x4 int64 lanes and accumulate the sum exactly.
    sum_lo = _mm256_add_epi64(
        sum_lo, _mm256_cvtepi32_epi64(_mm256_castsi256_si128(v)));
    sum_hi = _mm256_add_epi64(
        sum_hi, _mm256_cvtepi32_epi64(_mm256_extracti128_si256(v, 1)));
    if (k > 0) {
      // out-of-range lane = (v < 0) | (v >= k).
      const __m256i neg = _mm256_cmpgt_epi32(zero, v);
      const __m256i high = _mm256_cmpgt_epi32(kvec, v);  // v < k per lane
      oor_acc = _mm256_or_si256(
          oor_acc, _mm256_or_si256(neg, _mm256_andnot_si256(high, _mm256_set1_epi32(-1))));
      // Histogram over the in-register block, scalar increments.
      for (int lane = 0; lane < 8; ++lane) {
        const int s = data[t + lane];
        if (s >= 0 && s < k) ++counts[s];
      }
    }
    for (std::size_t m = 0; m < vec_match; ++m) {
      match_acc[m] = _mm256_sub_epi32(match_acc[m],
                                      _mm256_cmpeq_epi32(v, match_target[m]));
    }
    for (std::size_t m = vec_match; m < num_match; ++m) {
      const int target = spec.match_states[m];
      for (int lane = 0; lane < 8; ++lane) {
        matches[m] += (data[t + lane] == target) ? 1 : 0;
      }
    }
  }

  // Horizontal reductions (integer adds — order-free).
  alignas(32) std::int64_t lanes64[4];
  std::int64_t sum = 0;
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes64), sum_lo);
  sum += lanes64[0] + lanes64[1] + lanes64[2] + lanes64[3];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes64), sum_hi);
  sum += lanes64[0] + lanes64[1] + lanes64[2] + lanes64[3];
  bool oor = _mm256_movemask_epi8(oor_acc) != 0;
  for (std::size_t m = 0; m < vec_match; ++m) {
    alignas(32) std::int32_t lanes32[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes32), match_acc[m]);
    for (int lane = 0; lane < 8; ++lane) matches[m] += lanes32[lane];
  }

  // Scalar tail.
  for (; t < n; ++t) {
    const int v = data[t];
    sum += v;
    if (k > 0) {
      if (v >= 0 && v < k) {
        ++counts[v];
      } else {
        oor = true;
      }
    }
    for (std::size_t m = 0; m < num_match; ++m) {
      matches[m] += (v == spec.match_states[m]) ? 1 : 0;
    }
  }

  stats->sum = sum;
  stats->out_of_range = oor;
}

__attribute__((target("avx2"))) void ClipScalesAvx2(const double* lipschitz,
                                                    const double* sigmas,
                                                    std::size_t n,
                                                    double* scales) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(scales + i, _mm256_mul_pd(_mm256_loadu_pd(lipschitz + i),
                                               _mm256_loadu_pd(sigmas + i)));
  }
  for (; i < n; ++i) scales[i] = lipschitz[i] * sigmas[i];
}
#endif  // PF_SIMD_X86

// ---- BatchLaplaceNoise ---------------------------------------------------
//
// An exact replica of libstdc++'s std::mt19937_64
// (std::mersenne_twister_engine<uint64_t, 64, 312, 156, 31,
// 0xb5026f5aa96619e9, 29, 0x5555555555555555, 17, 0x71d67fffeda60000, 37,
// 0xfff7eee000000000, 43, 6364136223846793005>) with the states of
// kNoiseLanes rows kept lane-major: the seeding recurrence and the twist
// are strictly serial per generator (each word depends on the previous),
// but independent across rows, so interleaving them lets the multiply
// chains pipeline instead of stalling — roughly a lane-count speedup on
// the state setup that dominates per-ticket noise cost. The per-draw
// conversion replicates uniform_real_distribution<double>(0, 1): one
// tempered 64-bit output divided by 2^64, with generate_canonical's
// below-1.0 clamp. Pinned bit-for-bit against std:: by
// BatchLaplaceNoiseMatchesPerRowRngBitForBit and the scalar-vs-columnar
// serving suite.

constexpr std::size_t kMtN = 312;
constexpr std::size_t kMtM = 156;
constexpr std::uint64_t kMtMatrixA = 0xb5026f5aa96619e9ULL;
constexpr std::uint64_t kMtUpperMask = 0xffffffff80000000ULL;
constexpr std::uint64_t kMtLowerMask = 0x000000007fffffffULL;
constexpr std::uint64_t kMtInitMult = 6364136223846793005ULL;
constexpr std::size_t kNoiseLanes = 8;

/// State words of kNoiseLanes independent engines, word-index major so the
/// interleaved loops touch consecutive memory across lanes.
struct MtLaneBlock {
  std::uint64_t state[kMtN][kNoiseLanes];
};

inline std::uint64_t MtTemper(std::uint64_t y) {
  y ^= (y >> 29) & 0x5555555555555555ULL;
  y ^= (y << 17) & 0x71d67fffeda60000ULL;
  y ^= (y << 37) & 0xfff7eee000000000ULL;
  y ^= (y >> 43);
  return y;
}

/// One twist step from state words x_k, x_{k+1}, x_{k+m} (branchless form
/// of the (y & 1) ? matrix_a : 0 conditional).
inline std::uint64_t MtTwistWord(std::uint64_t xk, std::uint64_t xk1,
                                 std::uint64_t xkm) {
  const std::uint64_t y = (xk & kMtUpperMask) | (xk1 & kMtLowerMask);
  return xkm ^ (y >> 1) ^ (kMtMatrixA & (0 - (y & 1ULL)));
}

void MtSeedLanes(MtLaneBlock* mt, const std::uint64_t* seeds,
                 std::size_t lanes) {
  for (std::size_t l = 0; l < lanes; ++l) mt->state[0][l] = seeds[l];
  for (std::size_t i = 1; i < kMtN; ++i) {
    for (std::size_t l = 0; l < lanes; ++l) {
      const std::uint64_t prev = mt->state[i - 1][l];
      mt->state[i][l] =
          kMtInitMult * (prev ^ (prev >> 62)) + static_cast<std::uint64_t>(i);
    }
  }
}

void MtTwistLanes(MtLaneBlock* mt, std::size_t lanes) {
  auto& s = mt->state;
  for (std::size_t k = 0; k < kMtN - kMtM; ++k) {
    for (std::size_t l = 0; l < lanes; ++l) {
      s[k][l] = MtTwistWord(s[k][l], s[k + 1][l], s[k + kMtM][l]);
    }
  }
  for (std::size_t k = kMtN - kMtM; k < kMtN - 1; ++k) {
    for (std::size_t l = 0; l < lanes; ++l) {
      s[k][l] = MtTwistWord(s[k][l], s[k + 1][l], s[k + kMtM - kMtN][l]);
    }
  }
  for (std::size_t l = 0; l < lanes; ++l) {
    s[kMtN - 1][l] = MtTwistWord(s[kMtN - 1][l], s[0][l], s[kMtM - 1][l]);
  }
}

/// Retwist a single lane in place (stride kNoiseLanes words). Cold path:
/// only a row needing more than 312 draws — a vector row wider than the
/// state, or a redraw cascade — reaches it.
void MtTwistStrided(std::uint64_t* lane0) {
  auto at = [lane0](std::size_t i) -> std::uint64_t& {
    return lane0[i * kNoiseLanes];
  };
  for (std::size_t k = 0; k < kMtN - kMtM; ++k) {
    at(k) = MtTwistWord(at(k), at(k + 1), at(k + kMtM));
  }
  for (std::size_t k = kMtN - kMtM; k < kMtN - 1; ++k) {
    at(k) = MtTwistWord(at(k), at(k + 1), at(k + kMtM - kMtN));
  }
  at(kMtN - 1) = MtTwistWord(at(kMtN - 1), at(0), at(kMtM - 1));
}

/// uniform_real_distribution<double>(0, 1) on a 64-bit engine output,
/// libstdc++ generate_canonical semantics: one division by 2^64, and the
/// result clamped to the largest double below 1.0 when the conversion of x
/// to double rounds up to 2^64 (x within 512 of the top of the range).
inline double MtUnitDraw(std::uint64_t x) {
  const double u = static_cast<double>(x) / 18446744073709551616.0;
  return u >= 1.0 ? 1.0 - std::numeric_limits<double>::epsilon() / 2.0 : u;
}

}  // namespace

void AggregateStates(const int* data, std::size_t n, const AggregateSpec& spec,
                     AggregateStats* stats) {
  assert(spec.k == 0 || stats->counts != nullptr);
  assert(spec.match_states.empty() || stats->match_counts != nullptr);
  for (std::size_t i = 0; i < spec.k; ++i) stats->counts[i] = 0;
  for (std::size_t m = 0; m < spec.match_states.size(); ++m) {
    stats->match_counts[m] = 0;
  }
  stats->sum = 0;
  stats->out_of_range = false;
  if (n == 0) return;
#ifdef PF_SIMD_X86
  if (ActiveSimdLevel() == SimdLevel::kAvx2) {
    AggregateAvx2(data, n, spec, stats);
    return;
  }
#endif
  AggregatePortable(data, n, spec, stats);
}

void ClipScales(const double* lipschitz, const double* sigmas, std::size_t n,
                double* scales) {
#ifdef PF_SIMD_X86
  if (ActiveSimdLevel() == SimdLevel::kAvx2) {
    ClipScalesAvx2(lipschitz, sigmas, n, scales);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) scales[i] = lipschitz[i] * sigmas[i];
}

void BatchLaplaceNoise(double* values, const std::size_t* offsets,
                       const double* scales, const std::uint64_t* seeds,
                       std::size_t rows) {
  MtLaneBlock mt;  // ~20 KB: one group of engine states, reused per group.
  for (std::size_t base = 0; base < rows; base += kNoiseLanes) {
    const std::size_t lanes = std::min(kNoiseLanes, rows - base);
    MtSeedLanes(&mt, seeds + base, lanes);
    MtTwistLanes(&mt, lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
      const std::size_t r = base + l;
      double* out = values + offsets[r];
      const std::size_t n = offsets[r + 1] - offsets[r];
      const double scale = scales[r];
      std::size_t p = 0;
      for (std::size_t j = 0; j < n; ++j) {
        // Rng::Laplace's boundary redraw: u = 0 maps to log(0), so the
        // scalar path discards it; discard the same draws here.
        double u;
        do {
          if (p == kMtN) {
            MtTwistStrided(&mt.state[0][l]);
            p = 0;
          }
          u = MtUnitDraw(MtTemper(mt.state[p][l]));
          ++p;
        } while (u == 0.0);
        out[j] += LaplaceInverseCdf(u, scale);
      }
    }
  }
}

}  // namespace pf
