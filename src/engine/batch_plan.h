// The declarative plan frontend of the columnar batch-serving path. A
// BatchQuerySpec (many QuerySpecs, each over a DataWindow of the record)
// is parsed into an inspectable LOGICAL plan — project (rows to unique
// queries) → window (resolved slices) → clip → noise — then lowered to a
// PHYSICAL plan of kernel nodes: one AggregateStates pass per window, a
// derive node per unique query mapping integer statistics to query truth,
// a ClipScales node, and the per-ticket Laplace noise stage. Explain()
// dumps both levels.
//
//     BatchQuerySpec
//        |  CompileBatchPlan     engine compile cache, one compile per
//        |                       unique (window, spec); all-or-nothing
//        v
//     CompiledBatchPlan          logical + physical + compiled plans
//        |  ExecuteBatchPlan     aggregate -> derive -> clip -> noise,
//        |                       SimdLevel-dispatched kernels
//        v
//     BatchReleaseResult         one arena-backed RecordBatch
//
// Bit-identity contract: every built-in QueryKind's truth is derived from
// one integer aggregation pass in arithmetic that reproduces the scalar
// query functions bit for bit (exact integer sums below 2^53, then the
// same single multiply by 1/T), and row r's noise comes from the same
// per-ticket stream (TicketNoiseSeed) the scalar path would use — so a
// columnar batch equals the corresponding sequence of scalar Submits
// exactly, at any thread count and SimdLevel. Custom queries are evaluated
// through their compiled std::function against the materialized window,
// exactly as the scalar path does.
//
// Batch semantics are ALL-OR-NOTHING, unlike scalar SubmitBatch's per-row
// futures: a batch that fails to compile, mixes active quilts, or would
// overrun the budget is refused whole, and nothing is charged.
#ifndef PUFFERFISH_ENGINE_BATCH_PLAN_H_
#define PUFFERFISH_ENGINE_BATCH_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/record_batch.h"
#include "common/status.h"
#include "engine/batch_kernels.h"
#include "engine/query_spec.h"
#include "pufferfish/mechanism.h"

namespace pf {

class PrivacyEngine;
struct RequestOptions;

/// \brief A contiguous window of a (growing) record for sliding-window
/// queries: resolved against the database size at submit time. The engine
/// compiles the query against the WINDOW length (a window query is exactly
/// that much more sensitive per in-window record), while the plan — and
/// hence the Theorem 4.4 active quilt the release is ledgered under — is
/// the full model's, so suffix queries of any width compose in one ledger.
struct DataWindow {
  /// First observation index (ignored when from_end is set).
  std::size_t offset = 0;
  /// Number of observations; 0 means "from offset to the end".
  std::size_t length = 0;
  /// Take the LAST `length` observations (the streaming suffix query).
  bool from_end = false;

  /// The last n observations.
  static DataWindow Last(std::size_t n) {
    DataWindow w;
    w.length = n;
    w.from_end = true;
    return w;
  }
  /// Observations [offset, offset + length).
  static DataWindow Range(std::size_t offset, std::size_t length) {
    DataWindow w;
    w.offset = offset;
    w.length = length;
    return w;
  }
  /// The whole record.
  static DataWindow All() { return DataWindow{}; }
};

/// \brief Resolves a DataWindow against a record of `size` observations
/// into a concrete (offset, length) slice; empty or out-of-range windows
/// are refused here, before anything is charged. Shared by the scalar
/// windowed Release/Submit paths and the batch-plan compiler.
Result<std::pair<std::size_t, std::size_t>> ResolveDataWindow(
    const DataWindow& window, std::size_t size);

/// One row of a batch: a declarative query over a window of the record.
struct BatchQueryItem {
  QuerySpec spec;
  DataWindow window;  // Defaults to the whole record.
};

/// \brief The declarative input of the columnar path: many queries, one
/// database, one composed Theorem 4.4 charge. Row order is release order —
/// row i gets ticket first_ticket + i, exactly the tickets the same specs
/// submitted scalar, in order, would have drawn.
struct BatchQuerySpec {
  std::vector<BatchQueryItem> items;

  BatchQuerySpec& Add(QuerySpec spec) {
    items.push_back({std::move(spec), DataWindow::All()});
    return *this;
  }
  BatchQuerySpec& Add(QuerySpec spec, const DataWindow& window) {
    items.push_back({std::move(spec), window});
    return *this;
  }
  std::size_t size() const { return items.size(); }
  bool empty() const { return items.empty(); }
};

/// Sentinel index for "no node".
inline constexpr std::size_t kNoNode = std::numeric_limits<std::size_t>::max();

/// \brief The inspectable logical plan: rows projected onto unique
/// (window, query) pairs with resolved window slices.
struct LogicalBatchPlan {
  struct Window {
    /// Resolved slice [offset, offset + length) of the record.
    std::size_t offset = 0;
    std::size_t length = 0;
    /// True for DataWindow::All(): the query compiles against the engine's
    /// full record length (matching the scalar non-window Submit path) and
    /// executes over the whole database.
    bool full_record = false;
  };
  struct UniqueQuery {
    /// The declarative spec (carries the fn bodies for custom kinds).
    QuerySpec spec;
    std::size_t window_index = 0;
    /// Output dimension of the compiled query (1 for scalar kinds, k for
    /// histograms).
    std::size_t dim = 1;
    /// Compiled Lipschitz constant (window-length-derived for built-ins).
    double lipschitz = 0.0;
    /// Record length the query was compiled against (the window length, or
    /// the engine's record length for full-record rows) — the T in the
    /// built-in 1/T factors.
    std::size_t compile_length = 0;
    /// Rows mapping to this unique query.
    std::size_t num_rows = 0;
  };

  std::vector<Window> windows;
  /// Unique (window, spec) pairs in first-appearance order.
  std::vector<UniqueQuery> unique;
  /// Row i releases unique[row_to_unique[i]] under ticket first + i.
  std::vector<std::size_t> row_to_unique;
  /// Sum of row dims — the RecordBatch's flat value-buffer length.
  std::size_t total_values = 0;
  /// Database size the windows were resolved against.
  std::size_t data_size = 0;
};

/// \brief The physical plan: kernel nodes the executor runs.
struct PhysicalBatchPlan {
  /// How a unique query's truth is produced from kernel outputs.
  enum class DeriveOp {
    kSum,                 ///< double(sum)
    kMean,                ///< double(sum) * inv
    kStateFrequency,      ///< double(match_counts[match_index]) * inv
    kCountHistogram,      ///< double(counts[s]), zeros when out of range
    kFrequencyHistogram,  ///< double(counts[s]) * inv, zeros when OOR
    kEvaluate,            ///< compiled fn over the materialized window
  };
  struct AggregateNode {
    std::size_t window_index = 0;
    AggregateSpec spec;
  };
  /// derives[i] produces unique[i]'s truth (index-aligned with
  /// LogicalBatchPlan::unique).
  struct DeriveNode {
    DeriveOp op = DeriveOp::kEvaluate;
    /// Index into `aggregates` (kNoNode for kEvaluate).
    std::size_t aggregate_index = kNoNode;
    /// Index into the aggregate's match_states (kStateFrequency only).
    std::size_t match_index = 0;
    /// 1 / compile_length for the 1/T kinds; 0 otherwise.
    double inv = 0.0;
  };

  std::vector<AggregateNode> aggregates;
  std::vector<DeriveNode> derives;
};

/// A unique query compiled against the engine's model (mirrors
/// PrivacyEngine::CompiledQuery without depending on the engine header).
struct CompiledBatchQuery {
  VectorQuery query;
  std::shared_ptr<const MechanismPlan> plan;
};

/// \brief A fully lowered batch: logical plan, physical plan, and the
/// per-unique compiled (query, plan) pairs (index-aligned with
/// logical.unique). Immutable once compiled; safe to execute from any
/// thread.
struct CompiledBatchPlan {
  LogicalBatchPlan logical;
  PhysicalBatchPlan physical;
  std::vector<CompiledBatchQuery> compiled;

  std::size_t num_rows() const { return logical.row_to_unique.size(); }

  /// Human-readable dump of both plan levels (rows, windows, unique
  /// queries with epsilon/Lipschitz/sigma, kernel nodes, and the active
  /// SimdLevel the kernels would dispatch to).
  std::string Explain() const;
};

/// \brief The released batch: one arena-backed RecordBatch whose columns
/// carry the noisy values plus per-row accounting (epsilon, sigma, applied
/// noise scale, ticket), and the mechanism that served it.
struct BatchReleaseResult {
  RecordBatch batch;
  MechanismKind mechanism = MechanismKind::kLaplaceDp;
};

/// \brief Parses, resolves, dedupes, compiles, and lowers `batch` against
/// `engine`'s model for a database of `data_size` observations.
/// All-or-nothing: any row that fails to resolve or compile refuses the
/// whole batch (with the row index chained into the error). Uses the
/// engine's compiled-query cache — one Compile per unique (window, spec),
/// not per row. Honors `request` (deadline, cold-analysis shedding)
/// exactly like scalar Compile.
Result<CompiledBatchPlan> CompileBatchPlan(PrivacyEngine* engine,
                                           const BatchQuerySpec& batch,
                                           std::size_t data_size,
                                           const RequestOptions& request);
Result<CompiledBatchPlan> CompileBatchPlan(PrivacyEngine* engine,
                                           const BatchQuerySpec& batch,
                                           std::size_t data_size);

/// \brief Runs the physical plan over `data`: aggregate → derive → clip →
/// noise, with row i released under ticket `first_ticket + i` from the
/// (seed, ticket) noise streams. The caller has already charged the ledger
/// for every row (Session::SubmitColumnar does); like the scalar execute
/// path, a post-charge failure (a custom query violating its declared
/// dimension) surfaces as a typed Status with the charge standing.
Result<BatchReleaseResult> ExecuteBatchPlan(const CompiledBatchPlan& plan,
                                            const StateSequence& data,
                                            std::uint64_t seed,
                                            std::uint64_t first_ticket);

}  // namespace pf

#endif  // PUFFERFISH_ENGINE_BATCH_PLAN_H_
