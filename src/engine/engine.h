// Umbrella header for the serving API: model declaration, engine, queries,
// sessions. `#include "engine/engine.h"` is the documented way into the
// library; the mechanism layer underneath is the internal SPI.
#ifndef PUFFERFISH_ENGINE_ENGINE_H_
#define PUFFERFISH_ENGINE_ENGINE_H_

#include "engine/privacy_engine.h"
#include "engine/query_spec.h"
#include "engine/session.h"

#endif  // PUFFERFISH_ENGINE_ENGINE_H_
