// Per-tenant serving sessions: every release is charged against an epsilon
// budget through the Theorem 4.4 CompositionAccountant (K releases compose
// to K * max_k epsilon_k when they share active quilts). A session refuses
// releases that would overrun the budget (ResourceExhausted) or mix active
// quilts (FailedPrecondition — the Theorem 4.4 precondition).
//
// Determinism: each accepted release draws its noise from an RNG seeded by
// (session seed, ticket), where tickets are assigned in Submit() call
// order. Results are therefore bit-identical for any executor thread count
// and any completion order.
#ifndef PUFFERFISH_ENGINE_SESSION_H_
#define PUFFERFISH_ENGINE_SESSION_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "common/matrix.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/batch_plan.h"
#include "engine/privacy_engine.h"
#include "engine/query_spec.h"
#include "pufferfish/composition.h"

namespace pf {

struct SessionOptions {
  /// Total epsilon this session may spend (Theorem 4.4 composed level).
  /// Default: unmetered.
  double epsilon_budget = std::numeric_limits<double>::infinity();
  /// Seed for the session's deterministic noise stream. Unset (the
  /// default), the engine assigns every session a distinct seed: two
  /// sessions releasing the same value from the same noise stream would
  /// let an observer cancel the noise and recover the exact private
  /// value, so identical streams must be something a caller asks for
  /// explicitly (reproducible experiments), never an accident.
  std::optional<std::uint64_t> seed;
  /// Maximum concurrently in-flight asynchronous releases (admitted by
  /// Submit but not yet completed). 0 (the default) is unlimited. At the
  /// cap Submit refuses with Unavailable BEFORE charging the budget, so a
  /// shed ticket never debits epsilon.
  std::size_t max_in_flight = 0;
};

// DataWindow lives in engine/batch_plan.h (shared by the scalar windowed
// overloads below and the columnar batch frontend); it is re-exported here
// so existing includes of session.h keep compiling.

/// One released query: the noisy value plus its accounting facts.
struct ReleaseResult {
  /// The released (noisy) query value; dimension 1 for scalar kinds.
  Vector value;
  /// Epsilon charged for this release.
  double epsilon = 0.0;
  /// Noise scale multiplier the plan used.
  double sigma = 0.0;
  MechanismKind mechanism = MechanismKind::kLaplaceDp;
  /// Submission sequence number (also the noise-stream index).
  std::uint64_t ticket = 0;
};

/// \brief A privacy-budget ledger over one engine. Thread-safe; cheap to
/// create (plans are shared through the engine's caches). The engine must
/// outlive the session.
class Session {
 public:
  Session(PrivacyEngine* engine, const SessionOptions& options);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// \brief Synchronous point release: compile (cached), charge the
  /// budget, evaluate and noise the query on the calling thread.
  Result<ReleaseResult> Release(const QuerySpec& spec,
                                const StateSequence& data);

  /// \brief As Release, over a window of the record (sliding-window /
  /// suffix serving for appended streams). The window is resolved against
  /// `data` now; an out-of-range window is InvalidArgument and charges
  /// nothing.
  Result<ReleaseResult> Release(const QuerySpec& spec,
                                const StateSequence& data,
                                const DataWindow& window);

  /// \brief As Release, under per-request constraints: an expired deadline
  /// is refused with DeadlineExceeded before the budget is touched, a
  /// deadline expiring mid-analysis cancels it at the next checkpoint, and
  /// `allow_cold_analysis = false` sheds uncached plans with Unavailable.
  Result<ReleaseResult> Release(const QuerySpec& spec,
                                const StateSequence& data,
                                const RequestOptions& request);
  Result<ReleaseResult> Release(const QuerySpec& spec,
                                const StateSequence& data,
                                const DataWindow& window,
                                const RequestOptions& request);

  /// \brief Asynchronous release: compilation and budget charging happen
  /// now (in call order — tickets and the ledger are deterministic), the
  /// query evaluation and noise draw run on the engine's executor. A spec
  /// rejected at submit time returns an already-resolved errored future and
  /// charges nothing.
  std::future<Result<ReleaseResult>> Submit(const QuerySpec& spec,
                                            StateSequence data);
  /// As above, sharing an already-wrapped database (no copy per call).
  std::future<Result<ReleaseResult>> Submit(
      const QuerySpec& spec, std::shared_ptr<const StateSequence> data);

  /// \brief Asynchronous release under per-request constraints. Admission
  /// happens strictly before accounting: the executor slot and the
  /// session's in-flight cap are claimed first, so a request shed with
  /// Unavailable (queue full, in-flight cap, cold-shed policy) or refused
  /// with DeadlineExceeded never debits epsilon.
  std::future<Result<ReleaseResult>> Submit(
      const QuerySpec& spec, std::shared_ptr<const StateSequence> data,
      const RequestOptions& request);

  /// \brief Asynchronous sliding-window release: the window slice (O(W))
  /// and the budget charge happen now, in call order; evaluation and the
  /// noise draw run on the executor. Out-of-range windows return an
  /// already-resolved errored future and charge nothing.
  std::future<Result<ReleaseResult>> Submit(const QuerySpec& spec,
                                            const StateSequence& data,
                                            const DataWindow& window);
  /// Sliding-window release under per-request constraints (see above).
  std::future<Result<ReleaseResult>> Submit(const QuerySpec& spec,
                                            const StateSequence& data,
                                            const DataWindow& window,
                                            const RequestOptions& request);

  /// Many queries against one database (the serving batch path); the
  /// database is wrapped once and shared by every task, not copied per
  /// query. Identical (kind, parameters, epsilon) specs are compiled once
  /// per call — a 1k-row batch of one shape does one compile-cache lookup,
  /// not 1k.
  std::vector<std::future<Result<ReleaseResult>>> SubmitBatch(
      const std::vector<QuerySpec>& specs, const StateSequence& data);

  /// One query against many databases (per-subject fan-out).
  std::vector<std::future<Result<ReleaseResult>>> SubmitBatch(
      const QuerySpec& spec, const std::vector<StateSequence>& batch);

  /// \brief The columnar batch path: admits, prices the WHOLE batch under
  /// one Theorem 4.4 composed charge, and returns a single future over a
  /// struct-of-arrays result batch. All-or-nothing, unlike SubmitBatch's
  /// per-row futures: a batch that fails to compile, mixes active quilts,
  /// would overrun the budget, or is shed (queue full, in-flight cap,
  /// cold-shed policy) is refused whole and debits NOTHING. Admission
  /// strictly precedes accounting, exactly like Submit. Row i releases
  /// under ticket first + i, drawing from the same per-ticket noise stream
  /// the scalar path would — released values are bit-identical to
  /// submitting the same specs scalar, in order, at any thread count and
  /// SimdLevel, while skipping the per-row dispatch/future/allocation
  /// overhead (see bench_batch_serving).
  std::future<Result<BatchReleaseResult>> SubmitColumnar(
      const BatchQuerySpec& batch, const StateSequence& data);
  std::future<Result<BatchReleaseResult>> SubmitColumnar(
      const BatchQuerySpec& batch, const StateSequence& data,
      const RequestOptions& request);

  double epsilon_budget() const { return options_.epsilon_budget; }
  /// Asynchronous releases admitted but not yet completed.
  std::size_t in_flight() const {
    return in_flight_->load(std::memory_order_relaxed);
  }
  /// Composed epsilon spent so far (K * max_k epsilon_k, Theorem 4.4).
  double EpsilonSpent() const;
  /// Budget still spendable (infinite for unmetered sessions).
  double EpsilonRemaining() const;
  std::size_t num_releases() const;

 private:
  /// Charges one release: refuses quilt mismatches (FailedPrecondition)
  /// and budget overruns (ResourceExhausted), else records it and returns
  /// the assigned ticket.
  Result<std::uint64_t> ChargeLocked(const MechanismPlan& plan)
      PF_REQUIRES(mutex_);

  /// \brief Charges a whole columnar batch atomically: every unique plan
  /// must be releasable, every row must share one active quilt (with each
  /// other and the ledger), and the composed level (K + rows) * max epsilon
  /// must fit the budget — else the whole batch is refused and nothing is
  /// recorded. Returns the first of `rows` contiguous tickets.
  Result<std::uint64_t> ChargeBatchLocked(const CompiledBatchPlan& plan)
      PF_REQUIRES(mutex_);

  /// Claims one in-flight slot (CAS against max_in_flight); Unavailable at
  /// the cap. The slot is returned by the task body on completion, or by
  /// the submit path on any failure between admission and hand-off.
  Status AdmitInFlight();

  /// The admission + charge + hand-off tail shared by every Submit
  /// overload, in the shed-before-charge order: executor permit, in-flight
  /// slot, budget charge, then the task keeps the permit.
  std::future<Result<ReleaseResult>> SubmitCompiled(
      PrivacyEngine::CompiledQuery q,
      std::shared_ptr<const StateSequence> data);

  /// The noise task body shared by Release and Submit.
  static Result<ReleaseResult> Execute(const PrivacyEngine::CompiledQuery& q,
                                       const StateSequence& data,
                                       std::uint64_t seed,
                                       std::uint64_t ticket);

  PrivacyEngine* const engine_;
  const SessionOptions options_;
  /// Resolved noise seed (options_.seed or engine-assigned).
  const std::uint64_t seed_;

  /// Shared with task bodies so a completion can return its slot even if
  /// it outlives the session object (futures may be drained after ~Session).
  const std::shared_ptr<std::atomic<std::size_t>> in_flight_;

  mutable Mutex mutex_;
  CompositionAccountant accountant_ PF_GUARDED_BY(mutex_);
  std::uint64_t next_ticket_ PF_GUARDED_BY(mutex_) = 0;
};

}  // namespace pf

#endif  // PUFFERFISH_ENGINE_SESSION_H_
