#include "engine/privacy_engine.h"

#include <algorithm>
#include <chrono>
#include <random>
#include <thread>
#include <utility>

#include "common/failpoint.h"
#include "common/fingerprint.h"
#include "common/parallel.h"
#include "engine/session.h"
#include "graphical/elimination.h"
#include "pufferfish/node_classes.h"
#include "pufferfish/plan_store.h"

namespace pf {

// ------------------------------------------------------------- ModelSpec --

ModelSpec ModelSpec::ChainClass(std::vector<MarkovChain> thetas,
                                std::size_t length) {
  ModelSpec m;
  m.kind = Kind::kChainClass;
  m.chains = std::move(thetas);
  m.length = length;
  if (!m.chains.empty()) m.num_states = m.chains.front().num_states();
  return m;
}

ModelSpec ModelSpec::ChainClassFreeInitial(std::vector<Matrix> transitions,
                                           std::size_t length) {
  ModelSpec m;
  m.kind = Kind::kChainClassFreeInitial;
  m.transitions = std::move(transitions);
  m.length = length;
  if (!m.transitions.empty()) m.num_states = m.transitions.front().rows();
  return m;
}

ModelSpec ModelSpec::ChainSummary(ChainClassSummary summary,
                                  std::size_t num_states, std::size_t length) {
  ModelSpec m;
  m.kind = Kind::kChainSummary;
  m.summary = summary;
  m.num_states = num_states;
  m.length = length;
  return m;
}

ModelSpec ModelSpec::NetworkClass(std::vector<BayesianNetwork> thetas) {
  ModelSpec m;
  m.kind = Kind::kNetworkClass;
  m.networks = std::move(thetas);
  if (!m.networks.empty()) {
    m.length = m.networks.front().num_nodes();
    std::size_t arity = 0;
    for (std::size_t i = 0; i < m.networks.front().num_nodes(); ++i) {
      arity = std::max(arity,
                       static_cast<std::size_t>(m.networks.front().node(i).arity));
    }
    m.num_states = arity;
  }
  return m;
}

ModelSpec ModelSpec::OutputPairs(std::vector<ConditionalOutputPair> pairs) {
  ModelSpec m;
  m.kind = Kind::kOutputPairs;
  m.pairs = std::move(pairs);
  return m;
}

ModelSpec ModelSpec::Sensitivity(double sensitivity) {
  ModelSpec m;
  m.kind = Kind::kSensitivity;
  m.sensitivity = sensitivity;
  return m;
}

ModelSpec ModelSpec::GroupSensitivity(double group_sensitivity) {
  ModelSpec m;
  m.kind = Kind::kGroupSensitivity;
  m.sensitivity = group_sensitivity;
  return m;
}

const char* ModelSpec::KindName() const {
  switch (kind) {
    case Kind::kChainClass: return "ChainClass";
    case Kind::kChainClassFreeInitial: return "ChainClassFreeInitial";
    case Kind::kChainSummary: return "ChainSummary";
    case Kind::kNetworkClass: return "NetworkClass";
    case Kind::kOutputPairs: return "OutputPairs";
    case Kind::kSensitivity: return "Sensitivity";
    case Kind::kGroupSensitivity: return "GroupSensitivity";
  }
  return "Unknown";
}

// ------------------------------------------------------- mechanism policy --

namespace {

Status ValidateModel(const ModelSpec& model) {
  switch (model.kind) {
    case ModelSpec::Kind::kChainClass:
      if (model.chains.empty()) {
        return Status::InvalidArgument("chain class is empty");
      }
      if (model.length == 0) {
        return Status::InvalidArgument("chain class needs a positive length");
      }
      return Status::OK();
    case ModelSpec::Kind::kChainClassFreeInitial:
      if (model.transitions.empty()) {
        return Status::InvalidArgument("free-initial class has no transitions");
      }
      if (model.length == 0) {
        return Status::InvalidArgument("chain class needs a positive length");
      }
      return Status::OK();
    case ModelSpec::Kind::kChainSummary:
      if (model.length == 0) {
        return Status::InvalidArgument("chain summary needs a positive length");
      }
      return Status::OK();
    case ModelSpec::Kind::kNetworkClass:
      if (model.networks.empty()) {
        return Status::InvalidArgument("network class is empty");
      }
      return Status::OK();
    case ModelSpec::Kind::kOutputPairs:
      if (model.pairs.empty()) {
        return Status::InvalidArgument("output-pair model has no pairs");
      }
      return Status::OK();
    case ModelSpec::Kind::kSensitivity:
    case ModelSpec::Kind::kGroupSensitivity:
      return Status::OK();
  }
  return Status::Internal("unhandled model kind");
}

/// The mechanisms constructible from each model kind.
bool Compatible(ModelSpec::Kind model, MechanismKind mech) {
  switch (model) {
    case ModelSpec::Kind::kChainClass:
      return mech == MechanismKind::kMqmExact ||
             mech == MechanismKind::kMqmApprox || mech == MechanismKind::kGk16;
    case ModelSpec::Kind::kChainClassFreeInitial:
      return mech == MechanismKind::kMqmExact || mech == MechanismKind::kGk16;
    case ModelSpec::Kind::kChainSummary:
      return mech == MechanismKind::kMqmApprox;
    case ModelSpec::Kind::kNetworkClass:
      return mech == MechanismKind::kMqmGeneral;
    case ModelSpec::Kind::kOutputPairs:
      return mech == MechanismKind::kWasserstein;
    case ModelSpec::Kind::kSensitivity:
      return mech == MechanismKind::kLaplaceDp;
    case ModelSpec::Kind::kGroupSensitivity:
      return mech == MechanismKind::kGroupDp;
  }
  return false;
}

ChainUnifiedOptions ChainOptions(const EngineOptions& options,
                                 std::size_t max_nearby,
                                 std::size_t num_threads) {
  ChainUnifiedOptions chain;
  chain.max_nearby = max_nearby;
  chain.allow_stationary_shortcut = options.allow_stationary_shortcut;
  chain.num_threads = num_threads;
  return chain;
}

/// make_unique with the Mechanism upcast folded in, so BuildMechanism's
/// returns stay a single implicit conversion away from Result.
template <typename M, typename... Args>
std::unique_ptr<Mechanism> MakeMechanism(Args&&... args) {
  return std::make_unique<M>(std::forward<Args>(args)...);
}

Result<std::unique_ptr<Mechanism>> BuildMechanism(const ModelSpec& model,
                                                  const EngineOptions& options,
                                                  MechanismKind kind,
                                                  std::size_t num_threads) {
  switch (kind) {
    case MechanismKind::kLaplaceDp:
      return MakeMechanism<LaplaceDpUnified>(model.sensitivity);
    case MechanismKind::kGroupDp:
      return MakeMechanism<GroupDpUnified>(model.sensitivity);
    case MechanismKind::kGk16: {
      std::vector<Matrix> transitions = model.transitions;
      if (transitions.empty()) {
        transitions.reserve(model.chains.size());
        for (const MarkovChain& theta : model.chains) {
          transitions.push_back(theta.transition());
        }
      }
      return MakeMechanism<Gk16Unified>(std::move(transitions), model.length);
    }
    case MechanismKind::kWasserstein:
      return MakeMechanism<WassersteinUnified>(model.pairs,
                                               options.wasserstein_backend);
    case MechanismKind::kMqmGeneral: {
      MqmAnalyzeOptions mqm;
      mqm.max_quilt_size = options.max_quilt_size;
      mqm.num_threads = num_threads;
      mqm.backend = options.network_backend;
      mqm.separator = options.network_separator;
      return MakeMechanism<MqmGeneralUnified>(model.networks, mqm);
    }
    case MechanismKind::kMqmExact: {
      const ChainUnifiedOptions chain =
          ChainOptions(options, options.exact_max_nearby, num_threads);
      if (model.kind == ModelSpec::Kind::kChainClassFreeInitial) {
        return MakeMechanism<MqmExactFreeInitialUnified>(
            model.transitions, model.length, chain);
      }
      return MakeMechanism<MqmExactUnified>(model.chains, model.length, chain);
    }
    case MechanismKind::kMqmApprox: {
      const ChainUnifiedOptions chain =
          ChainOptions(options, options.approx_max_nearby, num_threads);
      if (model.kind == ModelSpec::Kind::kChainSummary) {
        return MakeMechanism<MqmApproxUnified>(model.summary, model.length,
                                               chain);
      }
      return MakeMechanism<MqmApproxUnified>(model.chains, model.length,
                                             chain);
    }
  }
  return Status::Internal("unhandled mechanism kind");
}

}  // namespace

Result<MechanismKind> SelectMechanism(const ModelSpec& model,
                                      const EngineOptions& options) {
  PF_RETURN_NOT_OK(ValidateModel(model));
  if (options.mechanism.has_value()) {
    if (!Compatible(model.kind, *options.mechanism)) {
      return Status::InvalidArgument(
          std::string("mechanism override ") +
          MechanismKindName(*options.mechanism) +
          " cannot be built from a " + model.KindName() + " model");
    }
    return *options.mechanism;
  }
  switch (model.kind) {
    case ModelSpec::Kind::kChainClass:
      // Long chains: MQMApprox's Lemma 4.9 analysis is length-independent,
      // and per Section 5.3.2 its width is near-optimal at scale.
      return model.length > options.approx_length_cutoff
                 ? MechanismKind::kMqmApprox
                 : MechanismKind::kMqmExact;
    case ModelSpec::Kind::kChainClassFreeInitial:
      return MechanismKind::kMqmExact;
    case ModelSpec::Kind::kChainSummary:
      return MechanismKind::kMqmApprox;
    case ModelSpec::Kind::kNetworkClass: {
      // Structured networks of any size route to Algorithm 2 — its
      // variable-elimination inference is exponential only in treewidth —
      // but a model whose min-fill width already exceeds the cutoff would
      // build elimination tables of >= arity^(width+1) cells, so the
      // policy refuses it up front with the number in hand rather than
      // timing out in Analyze. (An explicit mechanism override skips this
      // screen: the caller opted in.)
      const std::size_t width =
          MinFillWidth(UnionMoralGraph(model.networks).adjacency());
      if (width > options.network_width_cutoff) {
        return Status::InvalidArgument(
            "network class min-fill width " + std::to_string(width) +
            " exceeds EngineOptions::network_width_cutoff (" +
            std::to_string(options.network_width_cutoff) +
            "): structured inference would be exponential in it; simplify "
            "the model, raise the cutoff, or override the mechanism");
      }
      return MechanismKind::kMqmGeneral;
    }
    case ModelSpec::Kind::kOutputPairs:
      return MechanismKind::kWasserstein;
    case ModelSpec::Kind::kSensitivity:
      return MechanismKind::kLaplaceDp;
    case ModelSpec::Kind::kGroupSensitivity:
      return MechanismKind::kGroupDp;
  }
  return Status::Internal("unhandled model kind");
}

// --------------------------------------------------------- PrivacyEngine --

namespace {

/// Base for engine-assigned session seeds. std::random_device alone is 32
/// bits and fully deterministic on some standard libraries, which would
/// reproduce the engine's noise-seed sequence across process restarts —
/// the correlated-noise hazard SessionOptions::seed exists to prevent. So
/// several draws are folded with a high-resolution timestamp and ASLR'd
/// address bits.
std::uint64_t RandomSeedBase() {
  // pf:allow(unseeded-randomness): this seeds the per-engine SESSION-seed
  // sequence, which must be distinct across engines/restarts — identical
  // noise streams would let an observer cancel the noise (see
  // SessionOptions::seed). Release noise itself stays deterministic per
  // (session seed, ticket).
  std::random_device rd;  // pf:allow(unseeded-randomness)
  std::uint64_t base = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  base = SplitMix64(base ^ static_cast<std::uint64_t>(
                               std::chrono::high_resolution_clock::now()
                                   .time_since_epoch()
                                   .count()));
  return SplitMix64(base ^ reinterpret_cast<std::uintptr_t>(&rd));
}

}  // namespace

PrivacyEngine::PrivacyEngine(ModelSpec model, EngineOptions options,
                             std::unique_ptr<Mechanism> mechanism,
                             std::size_t num_threads)
    : model_(std::move(model)),
      options_(options),
      num_states_(model_.num_states),
      mechanism_(std::move(mechanism)),
      cache_(options_.cache_capacity),
      executor_(ExecutorOptions{num_threads, options_.max_queue_depth}),
      session_seed_state_(RandomSeedBase()) {}

MechanismKind PrivacyEngine::mechanism_kind() const {
  MutexLock lock(model_mutex_);
  return mechanism_->kind();
}

std::shared_ptr<const Mechanism> PrivacyEngine::mechanism() const {
  MutexLock lock(model_mutex_);
  return mechanism_;
}

std::size_t PrivacyEngine::record_length() const {
  MutexLock lock(model_mutex_);
  return model_.length;
}

Status PrivacyEngine::AppendObservations(std::size_t delta) {
  MutexLock lock(model_mutex_);
  return SetRecordLengthLocked(model_.length + delta);
}

Status PrivacyEngine::SetRecordLength(std::size_t new_length) {
  MutexLock lock(model_mutex_);
  return SetRecordLengthLocked(new_length);
}

Status PrivacyEngine::SetRecordLengthLocked(std::size_t new_length) {
  switch (model_.kind) {
    case ModelSpec::Kind::kChainClass:
    case ModelSpec::Kind::kChainClassFreeInitial:
    case ModelSpec::Kind::kChainSummary:
      break;
    default:
      return Status::NotSupported(
          std::string("model kind ") + model_.KindName() +
          " has no record-length dimension to hot-swap");
  }
  if (new_length == 0) {
    return Status::InvalidArgument("record length must be positive");
  }
  if (new_length == model_.length) return Status::OK();
  ModelSpec updated = model_;
  updated.length = new_length;
  PF_ASSIGN_OR_RETURN(const MechanismKind kind,
                      SelectMechanism(updated, options_));
  PF_ASSIGN_OR_RETURN(
      std::unique_ptr<Mechanism> mechanism,
      BuildMechanism(updated, options_, kind, executor_.num_threads()));
  model_ = std::move(updated);
  mechanism_ = std::move(mechanism);
  // Bump the generation BEFORE clearing so a Compile racing this swap can
  // never re-insert an entry compiled against the old length.
  model_generation_.fetch_add(1, std::memory_order_release);
  {
    MutexLock compiled_lock(compiled_mutex_);
    compiled_.clear();
    compiled_order_.clear();
  }
  return Status::OK();
}

Result<PrivacyEngine::AnalysisStats> PrivacyEngine::AnalyzeStats(
    double epsilon) {
  std::shared_ptr<const Mechanism> mechanism = this->mechanism();
  PF_ASSIGN_OR_RETURN(std::shared_ptr<const MechanismPlan> plan,
                      cache_.GetOrExtend(*mechanism, epsilon));
  AnalysisStats stats;
  if (plan->kind == MechanismKind::kMqmGeneral) {
    stats.total_nodes = plan->mqm.total_nodes;
    stats.scored_nodes = plan->mqm.scored_nodes;
    stats.dedup_ratio = plan->mqm.dedup_ratio();
    stats.induced_width = plan->mqm.induced_width;
    stats.treewidth_bound = plan->mqm.treewidth_bound;
    stats.memory = plan->mqm.memory;
  } else {
    stats.total_nodes = plan->chain.total_nodes;
    stats.scored_nodes = plan->chain.scored_nodes;
    stats.dedup_ratio = plan->chain.dedup_ratio();
    stats.memory = plan->chain.memory;
    stats.used_stationary_shortcut = plan->chain.used_stationary_shortcut;
  }
  return stats;
}

Status PrivacyEngine::SaveAnalyses(const std::string& path) const {
  return SavePlanSnapshot(path, cache_.ExportPlans());
}

Result<std::size_t> PrivacyEngine::LoadAnalyses(const std::string& path) {
  PF_FAILPOINT("engine.load_analyses");
  Result<std::vector<CachedPlan>> entries = LoadPlanSnapshot(path);
  if (!entries.ok()) {
    // Chain the context: the caller sees the whole failure path in one
    // message ("warm-restart load: plan snapshot: checksum mismatch").
    return entries.status().WithContext("warm-restart load");
  }
  return cache_.ImportPlans(entries.value());
}

std::uint64_t PrivacyEngine::NextSessionSeed() {
  // The SplitMix64 generator over a random per-engine base: every call
  // yields a distinct, well-scrambled seed.
  return SplitMix64(session_seed_state_.fetch_add(0x9E3779B97F4A7C15u));
}

Result<std::unique_ptr<PrivacyEngine>> PrivacyEngine::Create(
    ModelSpec model, EngineOptions options) {
  PF_ASSIGN_OR_RETURN(const MechanismKind kind,
                      SelectMechanism(model, options));
  const std::size_t num_threads = ResolveThreadCount(options.num_threads);
  PF_ASSIGN_OR_RETURN(std::unique_ptr<Mechanism> mechanism,
                      BuildMechanism(model, options, kind, num_threads));
  // pf:allow(naked-new-delete): private constructor, make_unique cannot
  // reach it; ownership is taken on the same expression.
  return std::unique_ptr<PrivacyEngine>(new PrivacyEngine(  // pf:allow(naked-new-delete)
      std::move(model), options, std::move(mechanism), num_threads));
}

Result<PrivacyEngine::CompiledQuery> PrivacyEngine::Compile(
    const QuerySpec& spec) {
  return Compile(spec, /*window_length=*/0);
}

Result<PrivacyEngine::CompiledQuery> PrivacyEngine::Compile(
    const QuerySpec& spec, std::size_t window_length) {
  return Compile(spec, window_length, RequestOptions{});
}

Result<PrivacyEngine::CompiledQuery> PrivacyEngine::Compile(
    const QuerySpec& spec, std::size_t window_length,
    const RequestOptions& request) {
  // Refuse an already-dead request before doing any work (and, in the
  // Session flow, before the budget ledger is charged).
  if (request.deadline.expired()) {
    return Status::DeadlineExceeded("request deadline already expired")
        .WithContext("compile " + spec.CacheKey());
  }
  PF_FAILPOINT("engine.compile");
  // Snapshot the mutable model state once; the compiled entry is tagged
  // with the generation so a hot-swap racing this compile can never be
  // served a stale (wrong-length) entry later.
  std::shared_ptr<const Mechanism> mechanism;
  std::size_t model_length = 0;
  std::uint64_t generation = 0;
  {
    MutexLock lock(model_mutex_);
    mechanism = mechanism_;
    model_length = model_.length;
    generation = model_generation_.load(std::memory_order_relaxed);
  }
  if (window_length > model_length) {
    return Status::InvalidArgument(
        "window of " + std::to_string(window_length) +
        " observations exceeds the record length " +
        std::to_string(model_length));
  }
  // A full-record window IS the full-record query: normalize so it hits
  // the existing cache entry instead of compiling a duplicate.
  if (window_length == model_length) window_length = 0;
  const std::size_t compile_length =
      window_length == 0 ? model_length : window_length;
  // The window term is PREFIXED: CacheKey() ends with the free-form
  // custom-query name, so a window suffix could collide with a full-record
  // query whose name ends in "@wN". Keys always start with the fixed kind
  // name, never '@', so the prefixed form is unambiguous.
  const std::string key =
      window_length == 0
          ? spec.CacheKey()
          : "@w" + std::to_string(window_length) + "/" + spec.CacheKey();
  {
    MutexLock lock(compiled_mutex_);
    auto it = compiled_.find(key);
    if (it != compiled_.end()) return it->second;
  }
  PF_ASSIGN_OR_RETURN(
      VectorQuery query,
      CompileQuerySpec(spec, num_states_, compile_length));
  // Overload policy, applied only when the plan is not already resident
  // (warm traffic is never shed): the caller opted out of cold analyses,
  // or the executor queue is past the shed threshold. Both refusals are
  // transient — a retry succeeds once the plan is cached or load drops.
  if (!cache_.Contains(*mechanism, spec.epsilon)) {
    if (!request.allow_cold_analysis) {
      return Status::Unavailable(
                 "plan not cached and the request disallows cold analysis")
          .WithContext("compile " + spec.CacheKey());
    }
    const std::size_t shed_depth = options_.shed_cold_queue_depth;
    if (shed_depth > 0 && executor_.queue_depth() >= shed_depth) {
      return Status::Unavailable(
                 "cold analysis shed under load (queue depth " +
                 std::to_string(executor_.queue_depth()) + " >= " +
                 std::to_string(shed_depth) + "); retry after load drops")
          .WithContext("compile " + spec.CacheKey());
    }
  }
  // Effective analysis deadline: the per-request deadline tightened by the
  // engine-wide analysis timeout. Installed thread-locally for the
  // duration of the (possibly long) sigma analysis; ParallelFor carries it
  // into pool workers, so the checkpoints deep in the analysis loops see
  // it.
  Deadline analysis_deadline = request.deadline;
  if (options_.analysis_timeout_ms > 0) {
    const Deadline timeout = Deadline::After(options_.analysis_timeout_ms);
    if (analysis_deadline.infinite() ||
        timeout.remaining_ms() < analysis_deadline.remaining_ms()) {
      analysis_deadline = timeout;
    }
  }
  Result<std::shared_ptr<const MechanismPlan>> plan = [&] {
    DeadlineScope scope(analysis_deadline);
    return cache_.GetOrExtend(*mechanism, spec.epsilon);
  }();
  if (!plan.ok()) {
    return plan.status().WithContext("compile " + spec.CacheKey());
  }
  CompiledQuery compiled{std::move(query), std::move(plan).value()};
  MutexLock lock(compiled_mutex_);
  if (model_generation_.load(std::memory_order_acquire) != generation) {
    // The model was hot-swapped while we compiled: serve the (still
    // self-consistent) result but do not cache it under the new model.
    return compiled;
  }
  auto [it, inserted] = compiled_.emplace(key, std::move(compiled));
  if (inserted) {
    // Bounded like the plan cache: compiled entries pin their plans, so
    // letting this map grow per (shape, epsilon) forever would defeat
    // cache_capacity's memory bound on a long-lived server.
    compiled_order_.push_back(key);
    if (options_.cache_capacity > 0) {
      while (compiled_.size() > options_.cache_capacity &&
             !compiled_order_.empty()) {
        compiled_.erase(compiled_order_.front());
        compiled_order_.pop_front();
      }
    }
  }
  return it->second;
}

std::unique_ptr<Session> PrivacyEngine::CreateSession(
    const SessionOptions& options) {
  return std::make_unique<Session>(this, options);
}

std::unique_ptr<Session> PrivacyEngine::CreateSession() {
  return CreateSession(SessionOptions{});
}

}  // namespace pf
