#include "baselines/gk16.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "pufferfish/framework.h"

namespace pf {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kPi = 3.14159265358979323846;
}  // namespace

double Gk16PairwiseInfluence(const Matrix& transition) {
  const std::size_t k = transition.rows();
  double worst = 0.0;
  for (std::size_t x = 0; x < k; ++x) {
    for (std::size_t xp = 0; xp < k; ++xp) {
      if (x == xp) continue;
      for (std::size_t y = 0; y < k; ++y) {
        for (std::size_t yp = 0; yp < k; ++yp) {
          if (y == yp) continue;
          const double num = transition(x, y) * transition(xp, yp);
          const double den = transition(x, yp) * transition(xp, y);
          if (num <= 0.0) continue;
          if (den <= 0.0) return kInf;
          worst = std::max(worst, std::log(num / den));
        }
      }
    }
  }
  return 0.25 * worst;
}

Result<Gk16Analysis> Gk16Analyze(const std::vector<Matrix>& transitions,
                                 std::size_t length, double epsilon) {
  PF_RETURN_NOT_OK(ValidatePrivacyParams({epsilon}));
  if (transitions.empty()) return Status::InvalidArgument("empty class");
  if (length < 2) return Status::InvalidArgument("chain length must be >= 2");
  Gk16Analysis analysis;
  for (const Matrix& p : transitions) {
    if (p.rows() != p.cols() || !p.IsRowStochastic(1e-8)) {
      return Status::InvalidArgument("transition matrix must be row-stochastic");
    }
    analysis.nu = std::max(analysis.nu, Gk16PairwiseInfluence(p));
  }
  if (std::isinf(analysis.nu)) {
    analysis.spectral_norm = kInf;
    analysis.applicable = false;
    analysis.sigma = kInf;
    return analysis;
  }
  // Spectral norm of the T x T symmetric tridiagonal Toeplitz matrix with
  // zero diagonal and nu off-diagonal: 2 nu cos(pi / (T + 1)).
  analysis.spectral_norm =
      2.0 * analysis.nu * std::cos(kPi / static_cast<double>(length + 1));
  analysis.applicable = analysis.spectral_norm < 1.0;
  analysis.sigma = analysis.applicable
                       ? (1.0 + analysis.spectral_norm) /
                             (epsilon * (1.0 - analysis.spectral_norm))
                       : kInf;
  return analysis;
}

Result<Gk16Analysis> Gk16Analyze(const std::vector<MarkovChain>& thetas,
                                 std::size_t length, double epsilon) {
  std::vector<Matrix> transitions;
  transitions.reserve(thetas.size());
  for (const MarkovChain& theta : thetas) transitions.push_back(theta.transition());
  return Gk16Analyze(transitions, length, epsilon);
}

Result<double> Gk16ReleaseScalar(const Gk16Analysis& analysis, double value,
                                 double lipschitz, Rng* rng) {
  if (!analysis.applicable) {
    return Status::FailedPrecondition(
        "GK16 inapplicable: influence-matrix spectral norm >= 1");
  }
  return AddLaplaceNoise(value, lipschitz * analysis.sigma, rng);
}

Result<Vector> Gk16ReleaseVector(const Gk16Analysis& analysis,
                                 const Vector& value, double lipschitz,
                                 Rng* rng) {
  if (!analysis.applicable) {
    return Status::FailedPrecondition(
        "GK16 inapplicable: influence-matrix spectral norm >= 1");
  }
  return AddLaplaceNoise(value, lipschitz * analysis.sigma, rng);
}

}  // namespace pf
