#include "baselines/laplace_dp.h"

#include <cmath>

#include "pufferfish/framework.h"

namespace pf {

Result<LaplaceDpMechanism> LaplaceDpMechanism::Make(double sensitivity,
                                                    double epsilon) {
  PF_RETURN_NOT_OK(ValidatePrivacyParams({epsilon}));
  if (!(sensitivity >= 0.0) || !std::isfinite(sensitivity)) {
    return Status::InvalidArgument("sensitivity must be nonnegative and finite");
  }
  return LaplaceDpMechanism(sensitivity, epsilon);
}

double LaplaceDpMechanism::ReleaseScalar(double value, Rng* rng) const {
  return AddLaplaceNoise(value, noise_scale(), rng);
}

Vector LaplaceDpMechanism::ReleaseVector(const Vector& value, Rng* rng) const {
  return AddLaplaceNoise(value, noise_scale(), rng);
}

}  // namespace pf
