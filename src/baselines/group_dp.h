// Group differential privacy (Definition 2.2) via the Laplace mechanism with
// group sensitivity (Definition B.1): every maximal set of correlated
// records forms a group, and noise is calibrated to the worst-case change of
// the query when an entire group's records change. For a single connected
// Markov chain the whole chain is one group, which is why GroupDP noise
// scales with the (longest) chain length — the baseline behaviour the paper
// contrasts against.
#ifndef PUFFERFISH_BASELINES_GROUP_DP_H_
#define PUFFERFISH_BASELINES_GROUP_DP_H_

#include <cstddef>
#include <vector>

#include "common/histogram.h"
#include "common/matrix.h"
#include "common/random.h"
#include "common/status.h"

namespace pf {

/// \brief Group-DP Laplace mechanism with explicit group sensitivity.
class GroupDpMechanism {
 public:
  /// `group_sensitivity` = max over groups G of the L1 change of the query
  /// when all records in G change (Definition B.1); epsilon > 0.
  static Result<GroupDpMechanism> Make(double group_sensitivity, double epsilon);

  double noise_scale() const { return group_sensitivity_ / epsilon_; }

  double ReleaseScalar(double value, Rng* rng) const;
  Vector ReleaseVector(const Vector& value, Rng* rng) const;

 private:
  GroupDpMechanism(double s, double e) : group_sensitivity_(s), epsilon_(e) {}
  double group_sensitivity_;
  double epsilon_;
};

/// \brief Group sensitivity of the pooled relative-frequency histogram when
/// each sequence is one fully correlated group: 2 * max_len / total_len
/// (changing every record of the longest sequence moves at most that much
/// L1 mass). This is the Section 5.3 GroupDP baseline's "Lap(M/T eps)"
/// calibration.
Result<double> RelativeFrequencyGroupSensitivity(
    const std::vector<StateSequence>& sequences);

/// Group sensitivity of the mean-state query (1/T) sum X_t over one
/// length-T chain forming a single group: (k-1) (the entire chain can flip
/// between extreme states). Used by the Section 5.2 synthetic baseline.
double MeanStateGroupSensitivity(std::size_t k);

}  // namespace pf

#endif  // PUFFERFISH_BASELINES_GROUP_DP_H_
