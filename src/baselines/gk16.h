// GK16: the concurrent mechanism of Ghosh & Kleinberg, "Inferential privacy
// guarantees for differentially private mechanisms" (arXiv:1603.01508),
// implemented for Markov chains as the paper's Section 5 comparison
// baseline. No public implementation exists; this follows the construction
// the paper describes and documents the calibration in DESIGN.md §4:
//
//  - Each theta induces a pairwise "influence" nu(theta) between adjacent
//    chain nodes: a quarter of the worst log cross-ratio
//      nu = (1/4) max_{x != x', y != y'} log [P(x,y) P(x',y') /
//                                             (P(x,y') P(x',y))],
//    the log-odds change at a node when a neighbour's value flips.
//  - The influence matrix of a length-T chain is tridiagonal with nu on the
//    off-diagonals; its spectral norm is rho = 2 nu cos(pi/(T+1)).
//  - The mechanism applies only when rho < 1 (the spectral norm condition
//    that fails left of the dashed line in Figure 4 and on both real
//    datasets); when it applies, Laplace noise of scale
//    L (1 + rho) / (epsilon (1 - rho)) is added.
//
// Matching the paper's observations: the threshold is independent of
// epsilon; any zero transition probability makes nu (hence rho) infinite,
// so empirically estimated chains with unobserved transitions are N/A; and
// as Theta narrows to near-uniform chains the noise approaches the plain
// Laplace-DP level, beating MQM for the narrowest classes.
#ifndef PUFFERFISH_BASELINES_GK16_H_
#define PUFFERFISH_BASELINES_GK16_H_

#include <cstddef>
#include <vector>

#include "common/matrix.h"
#include "common/random.h"
#include "common/status.h"
#include "graphical/markov_chain.h"

namespace pf {

/// Analysis outcome of the GK16 construction on a chain class.
struct Gk16Analysis {
  /// Worst pairwise influence nu over the class; +infinity when a
  /// transition probability is zero.
  double nu = 0.0;
  /// Spectral norm of the tridiagonal influence matrix.
  double spectral_norm = 0.0;
  /// True iff spectral_norm < 1 (the mechanism's applicability condition).
  bool applicable = false;
  /// Laplace scale multiplier (per unit Lipschitz constant) when applicable:
  /// (1 + rho) / (epsilon (1 - rho)); +infinity otherwise.
  double sigma = 0.0;
};

/// Pairwise influence nu of a single transition matrix (see header comment).
double Gk16PairwiseInfluence(const Matrix& transition);

/// \brief Runs the GK16 analysis for a class of transition matrices over a
/// length-T chain at privacy level epsilon.
Result<Gk16Analysis> Gk16Analyze(const std::vector<Matrix>& transitions,
                                 std::size_t length, double epsilon);

/// Convenience overload for explicit chains (uses their transition
/// matrices).
Result<Gk16Analysis> Gk16Analyze(const std::vector<MarkovChain>& thetas,
                                 std::size_t length, double epsilon);

/// Releases a scalar L-Lipschitz query. Fails if the analysis found the
/// mechanism inapplicable.
Result<double> Gk16ReleaseScalar(const Gk16Analysis& analysis, double value,
                                 double lipschitz, Rng* rng);

/// Releases a vector query with independent per-coordinate noise.
Result<Vector> Gk16ReleaseVector(const Gk16Analysis& analysis,
                                 const Vector& value, double lipschitz,
                                 Rng* rng);

}  // namespace pf

#endif  // PUFFERFISH_BASELINES_GK16_H_
