#include "baselines/group_dp.h"

#include <algorithm>
#include <cmath>

#include "pufferfish/framework.h"

namespace pf {

Result<GroupDpMechanism> GroupDpMechanism::Make(double group_sensitivity,
                                                double epsilon) {
  PF_RETURN_NOT_OK(ValidatePrivacyParams({epsilon}));
  if (!(group_sensitivity >= 0.0) || !std::isfinite(group_sensitivity)) {
    return Status::InvalidArgument("group sensitivity must be nonnegative");
  }
  return GroupDpMechanism(group_sensitivity, epsilon);
}

double GroupDpMechanism::ReleaseScalar(double value, Rng* rng) const {
  return AddLaplaceNoise(value, noise_scale(), rng);
}

Vector GroupDpMechanism::ReleaseVector(const Vector& value, Rng* rng) const {
  return AddLaplaceNoise(value, noise_scale(), rng);
}

Result<double> RelativeFrequencyGroupSensitivity(
    const std::vector<StateSequence>& sequences) {
  std::size_t total = 0;
  std::size_t longest = 0;
  for (const StateSequence& s : sequences) {
    total += s.size();
    longest = std::max(longest, s.size());
  }
  if (total == 0) return Status::InvalidArgument("no observations");
  return 2.0 * static_cast<double>(longest) / static_cast<double>(total);
}

double MeanStateGroupSensitivity(std::size_t k) {
  // The whole chain is one group; flipping every X_t between the extreme
  // states 0 and k-1 moves the mean by (k-1).
  return static_cast<double>(k - 1);
}

}  // namespace pf
