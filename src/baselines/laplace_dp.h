// The classic Laplace mechanism for (entry-) differential privacy [Dwork et
// al. 2006]: noise scale = sensitivity / epsilon per coordinate. Used as the
// "DP" baseline of Table 1 (aggregate task) and as the degenerate case the
// Wasserstein Mechanism reduces to when Pufferfish specializes to DP.
#ifndef PUFFERFISH_BASELINES_LAPLACE_DP_H_
#define PUFFERFISH_BASELINES_LAPLACE_DP_H_

#include "common/matrix.h"
#include "common/random.h"
#include "common/status.h"

namespace pf {

/// \brief Laplace mechanism with explicit L1 sensitivity.
class LaplaceDpMechanism {
 public:
  /// `sensitivity` is the global L1 sensitivity of the released quantity
  /// with respect to one entry change; must be nonnegative, epsilon > 0.
  static Result<LaplaceDpMechanism> Make(double sensitivity, double epsilon);

  double noise_scale() const { return sensitivity_ / epsilon_; }

  /// Releases value + Lap(sensitivity/epsilon).
  double ReleaseScalar(double value, Rng* rng) const;

  /// Releases each coordinate with independent Lap(sensitivity/epsilon)
  /// noise (correct for L1 sensitivity over the whole vector).
  Vector ReleaseVector(const Vector& value, Rng* rng) const;

 private:
  LaplaceDpMechanism(double sensitivity, double epsilon)
      : sensitivity_(sensitivity), epsilon_(epsilon) {}
  double sensitivity_;
  double epsilon_;
};

}  // namespace pf

#endif  // PUFFERFISH_BASELINES_LAPLACE_DP_H_
