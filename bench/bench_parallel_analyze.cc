// Thread-scaling of the mechanism analyses — the internal SPI layer *under*
// the PrivacyEngine front door (serving-path benches live in
// bench_engine_serving.cc):
//
//  - AnalyzeMarkovQuiltMechanism on a 20-node binary Bayesian network
//    (enumeration inference dominates; the per-node sigma_i searches fan
//    out across the pool);
//  - MQMExact free-initial analysis (matrix-power tables + per-node scans).
//
// Run with --benchmark_filter=. on a multicore host; the Arg is the thread
// count, so e.g. threads:8 vs threads:1 shows the scaling. On a 1-core
// container the numbers collapse to parity — the determinism tests still
// guarantee identical sigma_max for every thread count.
//
// A warm AnalysisCache is also measured: the second Analyze of an identical
// (model, epsilon, width) key must be ~free and bump the plan's hit counter.
#include <benchmark/benchmark.h>

#include <cassert>

#include "bench/bench_util.h"
#include "graphical/bayesian_network.h"
#include "graphical/markov_chain.h"
#include "pufferfish/analysis_cache.h"
#include "pufferfish/markov_quilt_mechanism.h"
#include "pufferfish/mechanism.h"

namespace pf {
namespace {

constexpr std::size_t kNetworkNodes = 20;
constexpr double kEpsilon = 1.0;

const std::vector<BayesianNetwork>& TwentyNodeClass() {
  static auto* thetas = new std::vector<BayesianNetwork>([] {
    const MarkovChain chain =
        MarkovChain::Make({0.5, 0.5}, Matrix{{0.8, 0.2}, {0.3, 0.7}})
            .ValueOrDie();
    return std::vector<BayesianNetwork>{
        BayesianNetwork::FromMarkovChain(chain.initial(), chain.transition(),
                                         kNetworkNodes)
            .ValueOrDie()};
  }());
  return *thetas;
}

// The acceptance workload: Algorithm 2 on a 20-node network, scaled over
// the per-node sigma_i loop. The enumeration backend is pinned — the
// library default is now variable elimination (see
// bench_general_network), which would turn this from a thread-scaling
// workload into a microbenchmark.
void BM_GeneralAnalyze20Nodes(benchmark::State& state) {
  MqmAnalyzeOptions options;
  options.max_quilt_size = 1;  // Width-1 separators: ~20 quilts per node.
  options.backend = InferenceBackend::kEnumeration;
  options.quilt_search = QuiltSearchMode::kExhaustive;
  options.num_threads = static_cast<std::size_t>(state.range(0));
  MqmAnalysis analysis;
  for (auto _ : state) {
    analysis =
        AnalyzeMarkovQuiltMechanism(TwentyNodeClass(), kEpsilon, options)
            .ValueOrDie();
    // bench_util's const-ref DoNotOptimize, not benchmark::DoNotOptimize:
    // the library's mutable-lvalue overload ("+m,r" inline asm)
    // miscompiles under GCC 12 / benchmark 1.7, leaving the variable
    // clobbered after the loop (counters then report garbage). The
    // const-ref version only escapes the address, so the value survives.
    bench::DoNotOptimize(analysis.sigma_max);
  }
  state.counters["sigma_max"] = analysis.sigma_max;
  state.counters["threads"] = static_cast<double>(options.num_threads);
}
BENCHMARK(BM_GeneralAnalyze20Nodes)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// MQMExact free-initial: power-table construction + per-node scans.
void BM_ExactFreeInitialThreads(benchmark::State& state) {
  std::vector<Matrix> transitions;
  for (int i = 10; i <= 90; i += 20) {
    for (int j = 10; j <= 90; j += 20) {
      transitions.push_back(
          BinaryChainIntervalClass::TransitionFor(i / 100.0, j / 100.0));
    }
  }
  ChainMqmOptions options;
  options.epsilon = kEpsilon;
  options.num_threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto result = MqmExactAnalyzeFreeInitial(transitions, 1000, options);
    bench::DoNotOptimize(result.ValueOrDie().sigma_max);
  }
  state.counters["threads"] = static_cast<double>(options.num_threads);
}
BENCHMARK(BM_ExactFreeInitialThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Warm-cache amortization: second Analyze of an identical key is a lookup.
void BM_WarmAnalysisCache(benchmark::State& state) {
  const MarkovChain chain =
      MarkovChain::Make({0.5, 0.5}, Matrix{{0.8, 0.2}, {0.3, 0.7}})
          .ValueOrDie();
  const MqmExactUnified mechanism({chain}, 2000);
  AnalysisCache cache;
  const auto cold = cache.GetOrAnalyze(mechanism, kEpsilon).ValueOrDie();
  for (auto _ : state) {
    const auto warm = cache.GetOrAnalyze(mechanism, kEpsilon).ValueOrDie();
    bench::DoNotOptimize(warm->sigma);
  }
  assert(cold->cache_hit_count() > 0);
  state.counters["cache_hits"] = static_cast<double>(cold->cache_hit_count());
}
BENCHMARK(BM_WarmAnalysisCache)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pf

BENCHMARK_MAIN();
