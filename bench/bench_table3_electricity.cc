// Regenerates Table 3: L1 error of the 51-bin relative-frequency histogram
// of household power levels (T ~ 10^6, one chain), for epsilon in
// {0.2, 1, 5}, averaged over 20 random trials.
//
// Expected shape (paper): GroupDP is catastrophic (~ 2*51/epsilon: 516, 103,
// 20); GK16 is N/A (zero transitions make its influence infinite); MQMApprox
// and MQMExact achieve sub-1 errors, with MQMExact a few times better.
#include <benchmark/benchmark.h>

#include <cmath>

#include "baselines/gk16.h"
#include "baselines/group_dp.h"
#include "bench/bench_util.h"
#include "common/histogram.h"
#include "data/electricity.h"
#include "pufferfish/mqm_approx.h"
#include "pufferfish/mqm_exact.h"

namespace pf {
namespace {

constexpr int kTrials = 20;
const double kEpsilons[] = {0.2, 1.0, 5.0};

struct Setup {
  StateSequence sequence;
  MarkovChain chain;
  Setup(StateSequence s, MarkovChain c)
      : sequence(std::move(s)), chain(std::move(c)) {}
};

const Setup& GetSetup() {
  static auto* setup = new Setup([] {
    ElectricitySimOptions sim;
    Rng rng(0xE1EC);
    StateSequence seq = SimulateElectricity(sim, &rng).ValueOrDie();
    MarkovChain chain = MarkovChain::Estimate({seq}, kNumPowerLevels).ValueOrDie();
    return Setup(std::move(seq), std::move(chain));
  }());
  return *setup;
}

struct Table3Row {
  double group = 0.0, approx = 0.0, exact = 0.0;
  bool gk16_applicable = false;
};
Table3Row g_rows[3];

void BM_Table3Electricity(benchmark::State& state) {
  const int eps_idx = static_cast<int>(state.range(0));
  const double epsilon = kEpsilons[eps_idx];
  const Setup& setup = GetSetup();
  const std::size_t length = setup.sequence.size();
  const double lipschitz = 2.0 / static_cast<double>(length);

  ChainMqmOptions approx_options;
  approx_options.epsilon = epsilon;
  approx_options.max_nearby = 0;
  const ChainMqmResult approx =
      MqmApproxAnalyze({setup.chain}, length, approx_options).ValueOrDie();
  ChainMqmOptions exact_options;
  exact_options.epsilon = epsilon;
  exact_options.max_nearby = approx.active_quilt.NearbyCount() + 2;
  const ChainMqmResult exact =
      MqmExactAnalyze({setup.chain}, length, exact_options).ValueOrDie();

  Table3Row row;
  row.gk16_applicable =
      Gk16Analyze({setup.chain}, length, epsilon).ValueOrDie().applicable;
  Rng rng(31337 + eps_idx);
  for (auto _ : state) {
    double g = 0.0, a = 0.0, e = 0.0;
    for (int t = 0; t < kTrials; ++t) {
      for (std::size_t j = 0; j < kNumPowerLevels; ++j) {
        g += std::fabs(rng.Laplace(2.0 / epsilon));  // Single-chain GroupDP.
        a += std::fabs(rng.Laplace(lipschitz * approx.sigma_max));
        e += std::fabs(rng.Laplace(lipschitz * exact.sigma_max));
      }
    }
    row.group = g / kTrials;
    row.approx = a / kTrials;
    row.exact = e / kTrials;
  }
  g_rows[eps_idx] = row;
  state.counters["epsilon"] = epsilon;
  state.counters["err_GroupDP"] = row.group;
  state.counters["err_MQMApprox"] = row.approx;
  state.counters["err_MQMExact"] = row.exact;
}

BENCHMARK(BM_Table3Electricity)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pf

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  pf::bench::PrintHeader(
      "Table 3: L1 error, electricity histogram (51 bins, 20 trials)",
      {"eps=0.2", "eps=1", "eps=5"});
  pf::bench::PrintRow("GroupDP", {pf::g_rows[0].group, pf::g_rows[1].group,
                                  pf::g_rows[2].group});
  pf::bench::PrintRow("GK16 (N/A)", {-1.0, -1.0, -1.0});
  pf::bench::PrintRow("MQMApprox", {pf::g_rows[0].approx, pf::g_rows[1].approx,
                                    pf::g_rows[2].approx});
  pf::bench::PrintRow("MQMExact", {pf::g_rows[0].exact, pf::g_rows[1].exact,
                                   pf::g_rows[2].exact});
  return 0;
}
