// Ablation (DESIGN.md §6): the quilt search width ell (cap on card(X_N))
// trades noise against search time in MQMExact. Small ell misses the
// optimal quilt and inflates sigma toward the trivial-quilt fallback; large
// ell pays quadratically in search cost for no further noise reduction once
// the optimum is inside the cap.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "pufferfish/mqm_exact.h"

namespace pf {
namespace {

const MarkovChain& SlowChain() {
  // A slowly mixing chain (diagonal 0.97) on a T = 2000 horizon: the optimal
  // quilt is wide, so the width cap matters.
  static auto* chain = new MarkovChain(
      MarkovChain::Make({0.75, 0.25}, Matrix{{0.97, 0.03}, {0.09, 0.91}})
          .ValueOrDie());
  return *chain;
}

void BM_QuiltWidth(benchmark::State& state) {
  const std::size_t ell = static_cast<std::size_t>(state.range(0));
  ChainMqmOptions options;
  options.epsilon = 1.0;
  options.max_nearby = ell;
  double sigma = 0.0;
  for (auto _ : state) {
    const ChainMqmResult r = MqmExactAnalyze({SlowChain()}, 2000, options).ValueOrDie();
    sigma = r.sigma_max;
    benchmark::DoNotOptimize(r);
  }
  state.counters["ell"] = static_cast<double>(ell);
  state.counters["sigma"] = sigma;
}

BENCHMARK(BM_QuiltWidth)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pf

BENCHMARK_MAIN();
