// Long-chain scaling of the MQMExact sigma analysis: T in {1e3, 1e4, 1e5}
// crossed with k in {2, 8, 32} states. The quantity timed is the Table 2
// runtime — time to compute the noise scale — pushed to the chain lengths
// the electricity workload needs (Section 5.3, T ~ 1e4 and beyond).
//
// Three families of benchmarks:
//  - Dedup:      the marginal-dedup node scan (the default fast path);
//  - Exhaustive: the pre-optimization reference that scores every node
//                (dedup_nodes = false), run at the smaller T only — this
//                is the baseline the ISSUE's >= 5x criterion measures
//                against (compare Dedup/10000/<k> vs Exhaustive/10000/<k>);
//  - FreeInitial: the Appendix C.4 class on the streamed power ladder,
//                whose peak memory must stay O(k^2 * max_nearby), not
//                O(T * k^2) (reported by the ladder_mb counter).
//
// All benchmarks run single-threaded (num_threads = 1) so the dedup ratio,
// not thread fan-out, is what the numbers show; counters report
// scored-vs-total nodes and ladder memory.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "common/matrix.h"
#include "graphical/markov_chain.h"
#include "pufferfish/mqm_exact.h"

namespace pf {
namespace {

constexpr double kEpsilon = 1.0;
// Modest quilt-width cap so the exhaustive baseline finishes at T = 1e4;
// the dedup path's advantage only grows with wider caps.
constexpr std::size_t kMaxNearby = 16;

// A dense, fast-mixing k-state transition matrix: a lazy random walk whose
// off-diagonal mass tilts toward neighboring states. Deterministically
// generated (no RNG) so every run and both scan paths see the same model.
Matrix DenseTransition(std::size_t k) {
  Matrix p(k, k, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      const std::size_t d = i > j ? i - j : j - i;
      p(i, j) = (i == j ? 2.0 : 1.0) / (1.0 + static_cast<double>(d));
      row_sum += p(i, j);
    }
    for (std::size_t j = 0; j < k; ++j) p(i, j) /= row_sum;
  }
  return p;
}

// Point-mass initial distribution: maximally non-stationary, so the dedup
// scan has to track the marginal through its whole mixing transient.
MarkovChain DeltaChain(std::size_t k) {
  Vector q(k, 0.0);
  q[0] = 1.0;
  return MarkovChain::Make(q, DenseTransition(k)).ValueOrDie();
}

ChainMqmOptions Options(bool dedup) {
  ChainMqmOptions options;
  options.epsilon = kEpsilon;
  options.max_nearby = kMaxNearby;
  options.allow_stationary_shortcut = false;  // Time the scan, not Lemma C.4.
  options.dedup_nodes = dedup;
  options.num_threads = 1;
  return options;
}

void ReportChainCounters(benchmark::State& state, const ChainMqmResult& r) {
  state.counters["total_nodes"] = static_cast<double>(r.total_nodes);
  state.counters["scored_nodes"] = static_cast<double>(r.scored_nodes);
  state.counters["dedup_ratio"] = r.dedup_ratio();
  state.counters["ladder_mb"] =
      static_cast<double>(r.memory.peak_bytes) / (1024.0 * 1024.0);
}

void BM_LongChain_Dedup(benchmark::State& state) {
  const std::size_t length = static_cast<std::size_t>(state.range(0));
  const std::size_t k = static_cast<std::size_t>(state.range(1));
  const MarkovChain chain = DeltaChain(k);
  ChainMqmResult last;
  for (auto _ : state) {
    last = MqmExactAnalyze({chain}, length, Options(true)).ValueOrDie();
    benchmark::DoNotOptimize(last.sigma_max);
  }
  ReportChainCounters(state, last);
}
BENCHMARK(BM_LongChain_Dedup)
    ->ArgsProduct({{1000, 10000, 100000}, {2, 8, 32}})
    ->Unit(benchmark::kMillisecond);

// The pre-optimization baseline: every node scored. Kept to T <= 1e4 —
// at T = 1e5 x k = 32 a single iteration takes minutes, which is the
// point of the fast path.
void BM_LongChain_Exhaustive(benchmark::State& state) {
  const std::size_t length = static_cast<std::size_t>(state.range(0));
  const std::size_t k = static_cast<std::size_t>(state.range(1));
  const MarkovChain chain = DeltaChain(k);
  ChainMqmResult last;
  for (auto _ : state) {
    last = MqmExactAnalyze({chain}, length, Options(false)).ValueOrDie();
    benchmark::DoNotOptimize(last.sigma_max);
  }
  ReportChainCounters(state, last);
}
BENCHMARK(BM_LongChain_Exhaustive)
    ->ArgsProduct({{1000, 10000}, {2, 8, 32}})
    ->Unit(benchmark::kMillisecond);

// Free-initial (Appendix C.4) on the streamed power ladder. The ladder_mb
// counter is the memory story: it stays flat in T where the
// pre-optimization path allocated T k^2 doubles.
void BM_LongChain_FreeInitial(benchmark::State& state) {
  const std::size_t length = static_cast<std::size_t>(state.range(0));
  const std::size_t k = static_cast<std::size_t>(state.range(1));
  const Matrix p = DenseTransition(k);
  ChainMqmResult last;
  for (auto _ : state) {
    last = MqmExactAnalyzeFreeInitial({p}, length, Options(true)).ValueOrDie();
    benchmark::DoNotOptimize(last.sigma_max);
  }
  ReportChainCounters(state, last);
}
BENCHMARK(BM_LongChain_FreeInitial)
    ->ArgsProduct({{1000, 10000, 100000}, {2, 8, 32}})
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------------ streaming / appends --
//
// The continual-release workload: a chain that grows by delta observations
// per serving tick. BM_Streaming_Append measures the steady-state cost of
// ChainMqmAnalysis::ExtendTo (the retained analysis re-keys O(max_nearby)
// boundary nodes and streams the delta appended ones); BM_Streaming_Cold
// is the pre-PR behavior — throw the analysis away and re-run the full
// dedup scan — and the baseline the ISSUE's >= 10x criterion compares
// against (Append/<T>/<delta<=100> vs Cold/<T>). Fixed iteration counts
// keep the growing T near its nominal value across the run.

constexpr std::size_t kStreamK = 8;

void BM_Streaming_Append(benchmark::State& state) {
  const std::size_t base = static_cast<std::size_t>(state.range(0));
  const std::size_t delta = static_cast<std::size_t>(state.range(1));
  const MarkovChain chain = DeltaChain(kStreamK);
  ChainMqmAnalysis analysis =
      ChainMqmAnalysis::Analyze({chain}, base, Options(true)).ValueOrDie();
  std::size_t t = base;
  for (auto _ : state) {
    t += delta;
    if (!analysis.ExtendTo(t).ok()) state.SkipWithError("ExtendTo failed");
    benchmark::DoNotOptimize(analysis.result().sigma_max);
  }
  state.counters["final_T"] = static_cast<double>(t);
  ReportChainCounters(state, analysis.result());
}
BENCHMARK(BM_Streaming_Append)
    ->ArgsProduct({{10000, 100000}, {1, 100, 10000}})
    ->Iterations(50)
    ->Unit(benchmark::kMillisecond);

void BM_Streaming_Cold(benchmark::State& state) {
  const std::size_t length = static_cast<std::size_t>(state.range(0));
  const MarkovChain chain = DeltaChain(kStreamK);
  ChainMqmResult last;
  for (auto _ : state) {
    last = MqmExactAnalyze({chain}, length, Options(true)).ValueOrDie();
    benchmark::DoNotOptimize(last.sigma_max);
  }
  ReportChainCounters(state, last);
}
BENCHMARK(BM_Streaming_Cold)
    ->ArgsProduct({{10000, 100000}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pf

BENCHMARK_MAIN();
