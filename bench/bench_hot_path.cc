// Hot-path acceptance benches for the arena / SIMD / warm-restart work.
// Three claims, each measured directly:
//
//  1. Steady-state streaming appends (ChainMqmAnalysis::ExtendTo) and warm
//     elimination inferences (FactorConditionalJointInto) perform ZERO
//     heap allocations — counted by a real operator-new interposer, not a
//     proxy metric (counters allocs_per_append / allocs_per_call).
//  2. The AVX2-dispatched MultiplyBlocked kernel beats the portable kernel
//     at k >= 32 (counter flops; compare level:1 vs level:0 rows) while
//     staying bit-identical (pinned by matrix_test, re-checked here).
//  3. A warm restart (LoadAnalyses from a plan snapshot) replaces the cold
//     T=1e5 analysis with a file read (compare BM_Restart/warm:1 vs
//     warm:0).
//
// CI runs this with --benchmark_format=json --benchmark_out=
// BENCH_hot_path.json and archives the file.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "data/topologies.h"
#include "engine/engine.h"
#include "graphical/elimination.h"
#include "graphical/markov_chain.h"
#include "pufferfish/mqm_exact.h"

// ---------------------------------------------------------------------------
// Allocation interposer: counts every operator-new in the binary. Replacing
// the global operators in one TU covers the whole program, so the deltas
// around a measured call are exact — if the hot path mallocs, it shows.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::size_t> g_alloc_count{0};

void* CountedAlloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace pf {
namespace {

std::size_t AllocCount() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

Matrix RandomStochastic(std::size_t k, Rng* rng) {
  Matrix m(k, k);
  for (std::size_t r = 0; r < k; ++r) {
    double row_sum = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      m(r, c) = 0.05 + rng->Uniform();
      row_sum += m(r, c);
    }
    for (std::size_t c = 0; c < k; ++c) m(r, c) /= row_sum;
  }
  return m;
}

// --------------------------------------------------- 1a. streaming appends --

// Steady-state +1 appends on a mixed chain: the resumable analysis swaps
// retained buffers and re-joins existing dedup classes. allocs_per_append
// must be 0.000 — any malloc on the append path is a regression. The
// iteration count is pinned so the measured window sits inside the
// per-node index array's capacity (its amortized doubling — 1 malloc per
// 2^n appends, and the only allocation on this path — fires during
// warm-up, not the window; run with more iterations and you count exactly
// those doublings, in agreement with the tracked_mallocs counter).
void BM_SteadyAppendAllocs(benchmark::State& state) {
  const MarkovChain chain =
      MarkovChain::Make({1.0, 0.0}, Matrix{{0.9, 0.1}, {0.4, 0.6}})
          .ValueOrDie();
  ChainMqmOptions options;
  options.epsilon = 1.0;
  options.max_nearby = 8;
  options.allow_stationary_shortcut = false;
  ChainMqmAnalysis analysis =
      ChainMqmAnalysis::Analyze({chain}, 10000, options).ValueOrDie();
  std::size_t length = 10000;
  // Warm-up appends absorb the one-time scratch growth after the cold run.
  for (int i = 0; i < 4; ++i) {
    if (!analysis.ExtendTo(++length).ok()) state.SkipWithError("extend");
  }
  std::size_t allocs = 0;
  std::size_t appends = 0;
  std::size_t tracked_mallocs = 0;
  for (auto _ : state) {
    const std::size_t before = AllocCount();
    if (!analysis.ExtendTo(++length).ok()) state.SkipWithError("extend");
    allocs += AllocCount() - before;
    tracked_mallocs += analysis.result().memory.mallocs;
    ++appends;
  }
  bench::DoNotOptimize(analysis.result().sigma_max);
  state.counters["allocs_per_append"] =
      static_cast<double>(allocs) / static_cast<double>(appends);
  // The library's own MemoryStats tracker must agree with the interposer.
  state.counters["tracked_mallocs"] = static_cast<double>(tracked_mallocs);
  state.counters["retained_bytes"] =
      static_cast<double>(analysis.result().memory.arena_retained_bytes);
}
BENCHMARK(BM_SteadyAppendAllocs)
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(8000);

// ------------------------------------------------ 1b. warm elimination ----

// Repeated conditional-joint inferences on a 127-node tree: after the
// first call warms the thread's elimination workspace, every later call
// runs entirely in the retained arena. allocs_per_call must be 0.000.
void BM_WarmEliminationAllocs(benchmark::State& state) {
  const BayesianNetwork net =
      TreeNetwork(127, 2, Vector{0.6, 0.4}, BinaryNoisyCopyCpt(0.25))
          .ValueOrDie();
  const std::vector<Factor> factors = net.Factors();
  const std::vector<int> arities = net.Arities();
  const std::vector<int> targets{63, 100};
  const std::vector<std::pair<int, int>> evidence{{0, 0}, {126, 1}};
  Vector out;
  // Warm the thread-local workspace (first call allocates the arena).
  for (int i = 0; i < 3; ++i) {
    const Status s =
        FactorConditionalJointInto(factors, arities, targets, evidence,
                                   1u << 22, InferenceBackend::kAuto,
                                   nullptr, &out);
    if (!s.ok()) state.SkipWithError("inference");
  }
  std::size_t allocs = 0;
  std::size_t calls = 0;
  for (auto _ : state) {
    const std::size_t before = AllocCount();
    const Status s =
        FactorConditionalJointInto(factors, arities, targets, evidence,
                                   1u << 22, InferenceBackend::kAuto,
                                   nullptr, &out);
    if (!s.ok()) state.SkipWithError("inference");
    allocs += AllocCount() - before;
    ++calls;
  }
  bench::DoNotOptimize(out);
  state.counters["allocs_per_call"] =
      static_cast<double>(allocs) / static_cast<double>(calls);
  state.counters["scratch_retained_bytes"] =
      static_cast<double>(EliminationScratchRetainedBytes());
}
BENCHMARK(BM_WarmEliminationAllocs)->Unit(benchmark::kMicrosecond);

// ----------------------------------------------------- 2. kernel GFLOP/s --

// MultiplyBlocked at the dispatch levels; Arg0: 0 = portable, 1 = AVX2
// (clamped to the CPU), Arg1: k. The flops counter is a rate — compare
// level:1 to level:0 at the same k for the SIMD speedup. Both levels are
// bit-identical by contract; verified per iteration below on the cheap.
void BM_MultiplyBlockedKernel(benchmark::State& state) {
  const SimdLevel requested =
      state.range(0) == 0 ? SimdLevel::kPortable : SimdLevel::kAvx2;
  const std::size_t k = static_cast<std::size_t>(state.range(1));
  if (requested == SimdLevel::kAvx2 &&
      DetectedSimdLevel() != SimdLevel::kAvx2) {
    state.SkipWithError("no AVX2 on this host");
    return;
  }
  Rng rng(7);
  const Matrix a = RandomStochastic(k, &rng);
  const Matrix b = RandomStochastic(k, &rng);
  SetSimdLevel(SimdLevel::kPortable);
  const Matrix reference = MultiplyBlocked(a, b);
  SetSimdLevel(requested);
  Matrix out;
  for (auto _ : state) {
    MultiplyBlockedInto(a, b, &out);
    bench::DoNotOptimize(out);
  }
  SetSimdLevel(DetectedSimdLevel());
  if (!(out == reference)) {
    state.SkipWithError("kernel diverged from portable reference");
    return;
  }
  state.counters["flops"] = benchmark::Counter(
      2.0 * static_cast<double>(k) * k * k *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["level"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_MultiplyBlockedKernel)
    ->Args({0, 32})
    ->Args({1, 32})
    ->Args({0, 64})
    ->Args({1, 64})
    ->Args({0, 128})
    ->Args({1, 128});

// --------------------------------------------------- 3. warm vs cold boot --

std::string SnapshotPath() {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp != nullptr ? tmp : "/tmp") +
         "/pf_bench_hot_path.snapshot";
}

ModelSpec RestartModel() {
  Rng rng(11);
  return ModelSpec::ChainClassFreeInitial({RandomStochastic(32, &rng)},
                                          100000);
}

// One process boot serving the first query: Arg 0 = cold (full T=1e5
// free-initial analysis), Arg 1 = warm (LoadAnalyses from a snapshot, the
// analysis becomes a cache hit). The warm:1 / warm:0 time ratio is the
// restart speedup; the acceptance bar is >= 100x.
void BM_Restart(benchmark::State& state) {
  const bool warm = state.range(0) != 0;
  const std::string path = SnapshotPath();
  if (warm) {
    auto saver = PrivacyEngine::Create(RestartModel()).ValueOrDie();
    (void)saver->Compile(QuerySpec::Mean(1.0)).ValueOrDie();
    if (!saver->SaveAnalyses(path).ok()) {
      state.SkipWithError("save failed");
      return;
    }
  }
  double sigma = 0.0;
  std::size_t loaded = 0;
  for (auto _ : state) {
    auto engine = PrivacyEngine::Create(RestartModel()).ValueOrDie();
    if (warm) loaded = engine->LoadAnalyses(path).ValueOrDie();
    sigma = engine->Compile(QuerySpec::Mean(1.0)).ValueOrDie().plan->sigma;
    bench::DoNotOptimize(sigma);
  }
  state.counters["sigma"] = sigma;  // Warm and cold rows must print equal.
  if (warm) {
    state.counters["plans_loaded"] = static_cast<double>(loaded);
    std::remove(path.c_str());
  }
}
BENCHMARK(BM_Restart)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace
}  // namespace pf

BENCHMARK_MAIN();
