// Regenerates Figure 4, lower row (d, e, f): exact and private aggregated
// activity relative-frequency histograms for the three participant groups at
// epsilon = 1, released with GroupDP, MQMApprox and MQMExact (GK16 does not
// apply — its spectral-norm condition fails on the empirical chains).
//
// Expected shape (paper): MQM releases track the exact histogram closely
// (cyclists most active, overweight women most sedentary); GroupDP's noise
// visibly distorts the bars.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>

#include "baselines/group_dp.h"
#include "bench/activity_experiment.h"
#include "bench/bench_util.h"
#include "common/histogram.h"

namespace pf {
namespace {

constexpr int kTrials = 20;

struct FigureRow {
  Vector truth;
  Vector group_dp;
  Vector approx;
  Vector exact;
};

FigureRow g_rows[3];

void BM_Fig4Activity(benchmark::State& state) {
  const auto group = bench::kAllGroups[state.range(0)];
  const bench::ActivityExperiment& exp = bench::GetActivityExperiment(group);
  const auto chains = exp.data.AllChains();
  const Vector truth =
      AggregateRelativeFrequencyHistogram(chains, kNumActivityStates)
          .ValueOrDie();
  const double epsilon = 1.0;
  const double lipschitz = 2.0 / static_cast<double>(exp.data.TotalObservations());
  const double group_sens =
      RelativeFrequencyGroupSensitivity(chains).ValueOrDie();
  Rng rng(42 + state.range(0));
  FigureRow row;
  row.truth = truth;
  row.group_dp.assign(kNumActivityStates, 0.0);
  row.approx.assign(kNumActivityStates, 0.0);
  row.exact.assign(kNumActivityStates, 0.0);
  for (auto _ : state) {
    // The figure plots one representative private release per mechanism
    // (kTrials releases are drawn; the median-L1 one is shown), clamped to
    // [0, 1] as postprocessing.
    auto draw = [&](double scale) {
      std::vector<Vector> releases;
      std::vector<std::pair<double, int>> errs;
      for (int t = 0; t < kTrials; ++t) {
        Vector rel(kNumActivityStates);
        for (std::size_t j = 0; j < kNumActivityStates; ++j) {
          rel[j] = std::clamp(truth[j] + rng.Laplace(scale), 0.0, 1.0);
        }
        errs.emplace_back(DistanceL1(rel, truth), t);
        releases.push_back(std::move(rel));
      }
      std::nth_element(errs.begin(), errs.begin() + kTrials / 2, errs.end());
      return releases[static_cast<std::size_t>(errs[kTrials / 2].second)];
    };
    row.group_dp = draw(group_sens / epsilon);
    row.approx = draw(lipschitz * exp.sigma_approx);
    row.exact = draw(lipschitz * exp.sigma_exact);
  }
  g_rows[state.range(0)] = row;
  for (std::size_t j = 0; j < kNumActivityStates; ++j) {
    state.counters[std::string("truth_") + ActivityStateName(static_cast<int>(j))] =
        truth[j];
    state.counters[std::string("mqm_exact_") +
                   ActivityStateName(static_cast<int>(j))] = row.exact[j];
  }
}

BENCHMARK(BM_Fig4Activity)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pf

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  for (int g = 0; g < 3; ++g) {
    const auto& row = pf::g_rows[g];
    if (row.truth.empty()) continue;
    pf::bench::PrintHeader(
        std::string("Figure 4(") + static_cast<char>('d' + g) + "): " +
            pf::ActivityGroupName(pf::bench::kAllGroups[g]) +
            " aggregate, epsilon = 1 (bin values)",
        {"Active", "StandStill", "StandMov", "Sedentary"});
    pf::bench::PrintRow("exact", row.truth);
    pf::bench::PrintRow("GroupDP", row.group_dp);
    pf::bench::PrintRow("MQMApprox", row.approx);
    pf::bench::PrintRow("MQMExact", row.exact);
  }
  std::printf("\n(GK16 does not apply to this problem: spectral norm >= 1.)\n");
  return 0;
}
