// Regenerates Table 2: wall-clock time to compute the Laplace noise scale
// (the sigma analysis) for each algorithm on each problem, epsilon = 1.
//
//  - synthetic: per-theta cost averaged over the grid p0, p1 in
//    {0.1, 0.11, ..., 0.9} (the paper's protocol), for GK16, MQMApprox and
//    MQMExact;
//  - the three activity groups and the electricity problem: MQMApprox and
//    MQMExact on the empirical chain (GK16 is N/A there).
//
// Expected shape (paper): MQMApprox is orders of magnitude faster than
// MQMExact; MQMExact's cost grows with the state space and chain length
// (electricity slowest) but stays manageable.
#include <benchmark/benchmark.h>

#include "baselines/gk16.h"
#include "bench/activity_experiment.h"
#include "bench/bench_util.h"
#include "data/electricity.h"
#include "pufferfish/mqm_approx.h"
#include "pufferfish/mqm_exact.h"

namespace pf {
namespace {

constexpr double kEpsilon = 1.0;
constexpr std::size_t kSyntheticLength = 100;

// Grid of synthetic transition matrices, p0, p1 in {0.1, 0.11, ..., 0.9}.
const std::vector<Matrix>& SyntheticGrid() {
  static auto* grid = new std::vector<Matrix>([] {
    std::vector<Matrix> g;
    for (int i = 10; i <= 90; ++i) {
      for (int j = 10; j <= 90; j += 8) {  // Thinned inner axis.
        g.push_back(BinaryChainIntervalClass::TransitionFor(i / 100.0, j / 100.0));
      }
    }
    return g;
  }());
  return *grid;
}

void BM_Synthetic_GK16(benchmark::State& state) {
  const auto& grid = SyntheticGrid();
  std::size_t idx = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Gk16Analyze({grid[idx % grid.size()]}, kSyntheticLength, kEpsilon));
    ++idx;
  }
}
BENCHMARK(BM_Synthetic_GK16);

void BM_Synthetic_MQMApprox(benchmark::State& state) {
  const auto& grid = SyntheticGrid();
  std::size_t idx = 0;
  for (auto _ : state) {
    const Matrix& p = grid[idx % grid.size()];
    const MarkovChain chain =
        MarkovChain::Make({0.5, 0.5}, p).ValueOrDie();
    ChainMqmOptions options;
    options.epsilon = kEpsilon;
    options.max_nearby = 0;
    benchmark::DoNotOptimize(
        MqmApproxAnalyze({chain}, kSyntheticLength, options));
    ++idx;
  }
}
BENCHMARK(BM_Synthetic_MQMApprox);

void BM_Synthetic_MQMExact(benchmark::State& state) {
  const auto& grid = SyntheticGrid();
  std::size_t idx = 0;
  for (auto _ : state) {
    ChainMqmOptions options;
    options.epsilon = kEpsilon;
    options.max_nearby = 90;
    benchmark::DoNotOptimize(MqmExactAnalyzeFreeInitial(
        {grid[idx % grid.size()]}, kSyntheticLength, options));
    ++idx;
  }
}
BENCHMARK(BM_Synthetic_MQMExact);

void BM_Activity_MQMApprox(benchmark::State& state) {
  const auto& exp =
      bench::GetActivityExperiment(bench::kAllGroups[state.range(0)]);
  for (auto _ : state) {
    ChainMqmOptions options;
    options.epsilon = kEpsilon;
    options.max_nearby = 0;
    benchmark::DoNotOptimize(
        MqmApproxAnalyze({exp.chain}, exp.data.LongestChain(), options));
  }
  state.SetLabel(ActivityGroupName(bench::kAllGroups[state.range(0)]));
}
BENCHMARK(BM_Activity_MQMApprox)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_Activity_MQMExact(benchmark::State& state) {
  const auto& exp =
      bench::GetActivityExperiment(bench::kAllGroups[state.range(0)]);
  ChainMqmOptions approx_options;
  approx_options.epsilon = kEpsilon;
  approx_options.max_nearby = 0;
  const std::size_t ell =
      MqmApproxAnalyze({exp.chain}, exp.data.LongestChain(), approx_options)
          .ValueOrDie()
          .active_quilt.NearbyCount() +
      2;
  for (auto _ : state) {
    ChainMqmOptions options;
    options.epsilon = kEpsilon;
    options.max_nearby = ell;
    benchmark::DoNotOptimize(
        MqmExactAnalyze({exp.chain}, exp.data.LongestChain(), options));
  }
  state.SetLabel(ActivityGroupName(bench::kAllGroups[state.range(0)]));
}
BENCHMARK(BM_Activity_MQMExact)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

// Electricity: simulate once (T = 10^6, 51 states), estimate the chain.
const MarkovChain& ElectricityChain() {
  static auto* chain = new MarkovChain([] {
    ElectricitySimOptions sim;
    Rng rng(0xE1EC);
    const StateSequence seq = SimulateElectricity(sim, &rng).ValueOrDie();
    return MarkovChain::Estimate({seq}, kNumPowerLevels).ValueOrDie();
  }());
  return *chain;
}
constexpr std::size_t kElectricityLength = 1000000;

void BM_Electricity_MQMApprox(benchmark::State& state) {
  const MarkovChain& chain = ElectricityChain();
  for (auto _ : state) {
    ChainMqmOptions options;
    options.epsilon = kEpsilon;
    options.max_nearby = 0;
    benchmark::DoNotOptimize(
        MqmApproxAnalyze({chain}, kElectricityLength, options));
  }
}
BENCHMARK(BM_Electricity_MQMApprox)->Unit(benchmark::kMillisecond);

void BM_Electricity_MQMExact(benchmark::State& state) {
  const MarkovChain& chain = ElectricityChain();
  ChainMqmOptions approx_options;
  approx_options.epsilon = kEpsilon;
  approx_options.max_nearby = 0;
  const std::size_t ell =
      MqmApproxAnalyze({chain}, kElectricityLength, approx_options)
          .ValueOrDie()
          .active_quilt.NearbyCount() +
      2;
  for (auto _ : state) {
    ChainMqmOptions options;
    options.epsilon = kEpsilon;
    options.max_nearby = ell;
    benchmark::DoNotOptimize(
        MqmExactAnalyze({chain}, kElectricityLength, options));
  }
}
BENCHMARK(BM_Electricity_MQMExact)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pf

BENCHMARK_MAIN();
