// Ablation (DESIGN.md §6): the Appendix C.4 closed-form optimization over
// initial distributions versus gridding the simplex. The closed form
// (max over matrix-power rows) covers *every* initial distribution at the
// cost of a single analysis; gridding with G points multiplies the analysis
// cost by G and in general only lower-bounds the class sigma (for binary
// chains the worst case sits at a simplex vertex, so a grid containing the
// endpoints happens to recover it — higher-order chains would not).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/random.h"
#include "pufferfish/framework.h"
#include "pufferfish/mqm_exact.h"

namespace pf {
namespace {

constexpr std::size_t kLength = 100;

const Matrix& Transition() {
  static auto* p = new Matrix(BinaryChainIntervalClass::TransitionFor(0.8, 0.7));
  return *p;
}

void BM_C4ClosedForm(benchmark::State& state) {
  ChainMqmOptions options;
  options.epsilon = 1.0;
  options.max_nearby = 90;
  double sigma = 0.0;
  for (auto _ : state) {
    sigma = MqmExactAnalyzeFreeInitial({Transition()}, kLength, options)
                .ValueOrDie()
                .sigma_max;
    benchmark::DoNotOptimize(sigma);
  }
  state.counters["sigma"] = sigma;
}
BENCHMARK(BM_C4ClosedForm)->Unit(benchmark::kMillisecond);

void BM_C4GridInitials(benchmark::State& state) {
  const int grid_points = static_cast<int>(state.range(0));
  ChainMqmOptions options;
  options.epsilon = 1.0;
  options.max_nearby = 90;
  options.allow_stationary_shortcut = false;
  double sigma = 0.0;
  for (auto _ : state) {
    sigma = 0.0;
    for (int g = 0; g <= grid_points; ++g) {
      const double q0 = static_cast<double>(g) / grid_points;
      const MarkovChain chain =
          MarkovChain::Make({q0, 1.0 - q0}, Transition()).ValueOrDie();
      const double s =
          MqmExactAnalyze({chain}, kLength, options).ValueOrDie().sigma_max;
      sigma = std::max(sigma, s);
    }
    benchmark::DoNotOptimize(sigma);
  }
  // The gridded sigma under-estimates the closed-form class sigma (it only
  // sees finitely many initial distributions).
  state.counters["sigma_grid"] = sigma;
  state.counters["grid_points"] = static_cast<double>(grid_points + 1);
}
BENCHMARK(BM_C4GridInitials)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pf

BENCHMARK_MAIN();
