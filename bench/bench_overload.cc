// Overload benchmark for the admission-control layer: warm (cached)
// serving latency with the engine idle vs. under synthetic overload where
// the executor queue sits at the cold-shed threshold and background
// threads flood the front door with cold requests that get shed.
//
// The acceptance bar: warm-path p99 under overload stays under 2x the
// idle p99, cold requests shed with Unavailable while the queue is full,
// and the same cold request serves as soon as the load drops. Compare the
// p99_ns counters of BM_WarmCompile/idle vs BM_WarmCompile/overload, and
// check sheds > 0 and recovered == 1 on the overload run.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "engine/executor.h"
#include "graphical/markov_chain.h"

namespace pf {
namespace {

constexpr std::size_t kLength = 1000;

MarkovChain BenchChain() {
  return MarkovChain::Make({0.5, 0.5}, Matrix{{0.9, 0.1}, {0.2, 0.8}})
      .ValueOrDie();
}

double Percentile(std::vector<double>& samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

// Arg(0): idle baseline. Arg(1): queue held at the shed threshold with two
// flood threads issuing never-before-seen cold epsilons; every one must
// shed (the held permits keep the depth at shed_cold_queue_depth) while
// the timed loop serves the warm plan.
void BM_WarmCompile(benchmark::State& state) {
  const bool overload = state.range(0) != 0;

  EngineOptions options;
  options.num_threads = 2;
  options.max_queue_depth = 16;
  options.shed_cold_queue_depth = 4;
  auto engine = PrivacyEngine::Create(
                    ModelSpec::ChainClass({BenchChain()}, kLength), options)
                    .ValueOrDie();
  (void)engine->Compile(QuerySpec::Sum(1.0)).ValueOrDie();  // Warm the plan.

  std::vector<Executor::Permit> held;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> sheds{0};
  std::atomic<std::uint64_t> cold_served{0};
  std::vector<std::thread> flood;
  if (overload) {
    for (int i = 0; i < 4; ++i) {
      held.push_back(engine->executor().TryAcquire().ValueOrDie());
    }
    for (int t = 0; t < 2; ++t) {
      flood.emplace_back([&engine, &stop, &sheds, &cold_served, t] {
        // Unique epsilons per thread so every request is genuinely cold.
        double epsilon = 0.010 + 0.001 * static_cast<double>(t);
        while (!stop.load(std::memory_order_relaxed)) {
          const auto cold = engine->Compile(QuerySpec::Sum(epsilon));
          if (!cold.ok() &&
              cold.status().code() == StatusCode::kUnavailable) {
            sheds.fetch_add(1, std::memory_order_relaxed);
          } else {
            cold_served.fetch_add(1, std::memory_order_relaxed);
          }
          epsilon += 0.002;
        }
      });
    }
  }

  std::vector<double> latencies_ns;
  latencies_ns.reserve(1 << 16);
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(engine->Compile(QuerySpec::Sum(1.0)));
    const auto t1 = std::chrono::steady_clock::now();
    latencies_ns.push_back(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
  }

  stop.store(true, std::memory_order_relaxed);
  for (auto& thread : flood) thread.join();

  // Recovery: once the held permits drop, a fresh cold epsilon analyzes
  // and serves — the sheds above were transient refusals, not failures.
  held.clear();
  const bool recovered = engine->Compile(QuerySpec::Sum(0.777)).ok();

  state.SetItemsProcessed(state.iterations());
  state.counters["p50_ns"] = Percentile(latencies_ns, 0.50);
  state.counters["p99_ns"] = Percentile(latencies_ns, 0.99);
  state.counters["sheds"] = static_cast<double>(sheds.load());
  state.counters["cold_served"] = static_cast<double>(cold_served.load());
  state.counters["recovered"] = recovered ? 1.0 : 0.0;
}
BENCHMARK(BM_WarmCompile)
    ->Arg(0)
    ->ArgName("overload")
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond)
    ->MinTime(0.5);

// End-to-end session view of the same policy: a session submitting warm
// releases while the executor queue is saturated by the flood. Warm
// releases ride the bounded queue too, so this measures the full
// admit -> charge -> execute path under contention rather than the
// cache-probe fast path alone.
void BM_SessionWarmReleaseUnderLoad(benchmark::State& state) {
  EngineOptions options;
  options.num_threads = 2;
  options.max_queue_depth = 64;
  options.shed_cold_queue_depth = 32;
  auto engine = PrivacyEngine::Create(
                    ModelSpec::ChainClass({BenchChain()}, kLength), options)
                    .ValueOrDie();
  (void)engine->Compile(QuerySpec::Sum(1.0)).ValueOrDie();

  Rng rng(23);
  const StateSequence data = BenchChain().Sample(kLength, &rng);

  SessionOptions session_options;
  session_options.epsilon_budget = 1e12;
  session_options.seed = 7;
  auto session = engine->CreateSession(session_options);

  std::vector<double> latencies_ns;
  latencies_ns.reserve(1 << 14);
  std::uint64_t sheds = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto released = session->Release(QuerySpec::Sum(1.0), data);
    const auto t1 = std::chrono::steady_clock::now();
    if (!released.ok()) ++sheds;
    latencies_ns.push_back(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
  }

  state.SetItemsProcessed(state.iterations());
  state.counters["p50_ns"] = Percentile(latencies_ns, 0.50);
  state.counters["p99_ns"] = Percentile(latencies_ns, 0.99);
  state.counters["sheds"] = static_cast<double>(sheds);
}
BENCHMARK(BM_SessionWarmReleaseUnderLoad)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pf

BENCHMARK_MAIN();
