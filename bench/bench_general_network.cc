// General-network (Algorithm 2) scaling: sizes x topologies x threads.
// The quantity timed is the sigma analysis — the expensive,
// data-independent phase — on the structured workloads the seed could not
// touch: trees, grids, and hub-and-spoke networks of up to hundreds of
// binary nodes (the enumeration reference refuses anything past ~22).
//
// Benchmark families:
//  - Elimination:  variable-elimination backend + auto quilt search +
//                  canonical node-class dedup (the default fast path), at
//                  1/2/4/8 analysis threads;
//  - Enumeration:  the exponential-in-node-count reference backend, run at
//                  the sizes it can still reach — this is the baseline the
//                  ISSUE's >= 10x criterion measures against (compare
//                  Tree/18/... across the two families);
//  - NoDedup:      elimination with dedup_nodes = false, isolating the
//                  node-class win from the inference win.
//
// Counters report sigma, scored-vs-total nodes, the dedup ratio, the
// observed induced width, and peak factor-table bytes.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "data/topologies.h"
#include "pufferfish/markov_quilt_mechanism.h"

namespace pf {
namespace {

constexpr double kEpsilon = 2.0;

enum Topology : int { kTree = 0, kGrid = 1, kHubSpoke = 2 };

const char* TopologyName(int topology) {
  switch (topology) {
    case kTree: return "tree";
    case kGrid: return "grid";
    case kHubSpoke: return "hub-spoke";
  }
  return "?";
}

// Deterministically built workloads (no RNG), dyadic CPTs: every run and
// every backend sees bit-identical models.
BayesianNetwork MakeNetwork(int topology, std::size_t num_nodes) {
  const Vector root = BinaryRoot(0.5);
  const Matrix edge = BinaryNoisyCopyCpt(0.375);
  switch (topology) {
    case kGrid: {
      // Near-square grid of ~num_nodes cells (3 rows keeps width small).
      const std::size_t rows = num_nodes < 9 ? 2 : 3;
      return GridNetwork(rows, (num_nodes + rows - 1) / rows, root, edge,
                         BinaryNoisyOrCpt(0.375))
          .ValueOrDie();
    }
    case kHubSpoke: {
      // Backbone of hubs with 4 household spokes each.
      const std::size_t hubs = (num_nodes + 4) / 5;
      return HubSpokeNetwork(hubs, 4, root, edge, edge).ValueOrDie();
    }
    case kTree:
    default:
      return TreeNetwork(num_nodes, 2, root, edge).ValueOrDie();
  }
}

MqmAnalyzeOptions Options(InferenceBackend backend, bool dedup,
                          std::size_t threads) {
  MqmAnalyzeOptions options;
  options.backend = backend;
  options.dedup_nodes = dedup;
  options.num_threads = threads;
  return options;
}

void ReportCounters(benchmark::State& state, const MqmAnalysis& analysis) {
  state.counters["sigma"] = analysis.sigma_max;
  state.counters["nodes"] = static_cast<double>(analysis.total_nodes);
  state.counters["scored"] = static_cast<double>(analysis.scored_nodes);
  state.counters["dedup_ratio"] = analysis.dedup_ratio();
  state.counters["width"] = static_cast<double>(analysis.induced_width);
  state.counters["peak_kb"] =
      static_cast<double>(analysis.memory.peak_bytes) / 1024.0;
}

// ---- Elimination backend (the fast path): sizes x topologies x threads.
void BM_Analyze(benchmark::State& state) {
  const int topology = static_cast<int>(state.range(0));
  const std::size_t num_nodes = static_cast<std::size_t>(state.range(1));
  const std::size_t threads = static_cast<std::size_t>(state.range(2));
  const BayesianNetwork bn = MakeNetwork(topology, num_nodes);
  const MqmAnalyzeOptions options =
      Options(InferenceBackend::kVariableElimination, true, threads);
  MqmAnalysis analysis;
  for (auto _ : state) {
    analysis = AnalyzeMarkovQuiltMechanism({bn}, kEpsilon, options).ValueOrDie();
    benchmark::DoNotOptimize(analysis.sigma_max + 0.0);
  }
  ReportCounters(state, analysis);
  state.SetLabel(TopologyName(topology));
}
BENCHMARK(BM_Analyze)
    ->ArgNames({"topo", "n", "threads"})
    // Tree: past the 100-node acceptance size, at 1/2/4/8 threads.
    ->Args({kTree, 18, 1})
    ->Args({kTree, 63, 1})
    ->Args({kTree, 127, 1})
    ->Args({kTree, 127, 2})
    ->Args({kTree, 127, 4})
    ->Args({kTree, 127, 8})
    ->Args({kTree, 255, 1})
    ->Args({kTree, 255, 8})
    // Grid: treewidth ~3, the hardest inference here.
    ->Args({kGrid, 18, 1})
    ->Args({kGrid, 60, 1})
    ->Args({kGrid, 120, 1})
    ->Args({kGrid, 120, 8})
    // Hub-and-spoke: the flu contact-network shape.
    ->Args({kHubSpoke, 20, 1})
    ->Args({kHubSpoke, 100, 1})
    ->Args({kHubSpoke, 250, 1})
    ->Args({kHubSpoke, 250, 8})
    ->Unit(benchmark::kMillisecond);

// ---- Enumeration reference at the sizes it can still reach.
void BM_AnalyzeEnumeration(benchmark::State& state) {
  const int topology = static_cast<int>(state.range(0));
  const std::size_t num_nodes = static_cast<std::size_t>(state.range(1));
  const BayesianNetwork bn = MakeNetwork(topology, num_nodes);
  const MqmAnalyzeOptions options =
      Options(InferenceBackend::kEnumeration, true, 1);
  MqmAnalysis analysis;
  for (auto _ : state) {
    analysis = AnalyzeMarkovQuiltMechanism({bn}, kEpsilon, options).ValueOrDie();
    benchmark::DoNotOptimize(analysis.sigma_max + 0.0);
  }
  ReportCounters(state, analysis);
  state.SetLabel(TopologyName(topology));
}
BENCHMARK(BM_AnalyzeEnumeration)
    ->ArgNames({"topo", "n"})
    ->Args({kTree, 14})
    ->Args({kTree, 18})
    ->Args({kGrid, 18})
    ->Args({kHubSpoke, 15})
    ->Unit(benchmark::kMillisecond);

// ---- Elimination without node-class dedup: isolates the two wins.
void BM_AnalyzeNoDedup(benchmark::State& state) {
  const int topology = static_cast<int>(state.range(0));
  const std::size_t num_nodes = static_cast<std::size_t>(state.range(1));
  const BayesianNetwork bn = MakeNetwork(topology, num_nodes);
  const MqmAnalyzeOptions options =
      Options(InferenceBackend::kVariableElimination, false, 1);
  MqmAnalysis analysis;
  for (auto _ : state) {
    analysis = AnalyzeMarkovQuiltMechanism({bn}, kEpsilon, options).ValueOrDie();
    benchmark::DoNotOptimize(analysis.sigma_max + 0.0);
  }
  ReportCounters(state, analysis);
  state.SetLabel(TopologyName(topology));
}
BENCHMARK(BM_AnalyzeNoDedup)
    ->ArgNames({"topo", "n"})
    ->Args({kTree, 127})
    ->Args({kGrid, 120})
    ->Args({kHubSpoke, 250})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pf

BENCHMARK_MAIN();
