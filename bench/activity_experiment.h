// Shared setup for the physical-activity experiment binaries (Figure 4
// lower row, Table 1, Table 2 columns): simulate each participant group
// once, estimate the group chain, and compute every mechanism's noise
// scale for the aggregate and individual tasks.
#ifndef PUFFERFISH_BENCH_ACTIVITY_EXPERIMENT_H_
#define PUFFERFISH_BENCH_ACTIVITY_EXPERIMENT_H_

#include <chrono>
#include <map>

#include "baselines/gk16.h"
#include "baselines/group_dp.h"
#include "data/activity.h"
#include "pufferfish/mqm_approx.h"
#include "pufferfish/mqm_exact.h"

namespace pf {
namespace bench {

struct ActivityExperiment {
  ActivityGroupData data;
  MarkovChain chain;          // Empirical group chain (stationary initial).
  double sigma_exact = 0.0;   // MQMExact noise multiplier at epsilon = 1.
  double sigma_approx = 0.0;  // MQMApprox noise multiplier at epsilon = 1.
  bool gk16_applicable = false;
  double seconds_exact = 0.0;
  double seconds_approx = 0.0;

  ActivityExperiment(ActivityGroupData d, MarkovChain c)
      : data(std::move(d)), chain(std::move(c)) {}
};

/// Simulates (once per process) and analyzes the given group at epsilon = 1.
/// MQMApprox uses the Lemma 4.9 automatic width; MQMExact uses the length of
/// MQMApprox's optimal quilt as its search cap (the paper's protocol).
inline const ActivityExperiment& GetActivityExperiment(ActivityGroup group) {
  static auto* cache = new std::map<int, ActivityExperiment>();
  const int key = static_cast<int>(group);
  auto it = cache->find(key);
  if (it != cache->end()) return it->second;

  Rng rng(0xAC71117 + key);
  ActivitySimOptions sim;
  ActivityGroupData data = SimulateActivityGroup(group, sim, &rng).ValueOrDie();
  MarkovChain chain =
      MarkovChain::Estimate(data.AllChains(), kNumActivityStates).ValueOrDie();
  ActivityExperiment exp(std::move(data), std::move(chain));

  const double epsilon = 1.0;
  const std::size_t longest = exp.data.LongestChain();
  using Clock = std::chrono::steady_clock;

  ChainMqmOptions approx_options;
  approx_options.epsilon = epsilon;
  approx_options.max_nearby = 0;
  auto t0 = Clock::now();
  const ChainMqmResult approx =
      MqmApproxAnalyze({exp.chain}, longest, approx_options).ValueOrDie();
  auto t1 = Clock::now();
  exp.sigma_approx = approx.sigma_max;
  exp.seconds_approx = std::chrono::duration<double>(t1 - t0).count();

  ChainMqmOptions exact_options;
  exact_options.epsilon = epsilon;
  exact_options.max_nearby = approx.active_quilt.NearbyCount() + 2;
  auto t2 = Clock::now();
  const ChainMqmResult exact =
      MqmExactAnalyze({exp.chain}, longest, exact_options).ValueOrDie();
  auto t3 = Clock::now();
  exp.sigma_exact = exact.sigma_max;
  exp.seconds_exact = std::chrono::duration<double>(t3 - t2).count();

  exp.gk16_applicable =
      Gk16Analyze({exp.chain}, longest, epsilon).ValueOrDie().applicable;
  return cache->emplace(key, std::move(exp)).first->second;
}

inline constexpr ActivityGroup kAllGroups[] = {
    ActivityGroup::kCyclist, ActivityGroup::kOlderWoman,
    ActivityGroup::kOverweightWoman};

}  // namespace bench
}  // namespace pf

#endif  // PUFFERFISH_BENCH_ACTIVITY_EXPERIMENT_H_
