// Regenerates the Section 3.1 worked example: a flu clique of 4 people with
// count distribution (0.1, 0.15, 0.5, 0.15, 0.1). The Wasserstein Mechanism
// adds Lap(2/epsilon) noise to the infected count (W = 2) against group
// differential privacy's Lap(4/epsilon) — half the noise at the same
// epsilon-Pufferfish guarantee. Also benchmarks the three W_inf backends on
// the clique pair.
#include <benchmark/benchmark.h>

#include <cmath>

#include "baselines/group_dp.h"
#include "bench/bench_util.h"
#include "data/flu.h"
#include "dist/wasserstein.h"
#include "pufferfish/markov_quilt_mechanism.h"
#include "pufferfish/wasserstein_mechanism.h"

namespace pf {
namespace {

constexpr int kTrials = 2000;
const double kEpsilons[] = {0.2, 1.0, 5.0};

struct Row {
  double w = 0.0, err_wasserstein = 0.0, err_group = 0.0;
};
Row g_rows[3];

void BM_FluExample(benchmark::State& state) {
  const double epsilon = kEpsilons[state.range(0)];
  const FluCliqueModel clique = FluCliqueModel::PaperExample();
  const ConditionalOutputPair pair = clique.CountQueryOutputPair().ValueOrDie();
  const auto mech = WassersteinMechanism::Make({pair}, epsilon).ValueOrDie();
  const auto group =
      GroupDpMechanism::Make(clique.GroupSensitivity(), epsilon).ValueOrDie();
  Rng rng(17 + state.range(0));
  Row row;
  row.w = mech.wasserstein_sensitivity();
  for (auto _ : state) {
    double werr = 0.0, gerr = 0.0;
    for (int t = 0; t < kTrials; ++t) {
      const std::vector<int> status = clique.Sample(&rng);
      double count = 0.0;
      for (int s : status) count += s;
      werr += std::fabs(mech.Release(count, &rng) - count);
      gerr += std::fabs(group.ReleaseScalar(count, &rng) - count);
    }
    row.err_wasserstein = werr / kTrials;
    row.err_group = gerr / kTrials;
  }
  g_rows[state.range(0)] = row;
  state.counters["W"] = row.w;
  state.counters["err_Wasserstein"] = row.err_wasserstein;
  state.counters["err_GroupDP"] = row.err_group;
}
BENCHMARK(BM_FluExample)->Arg(0)->Arg(1)->Arg(2)->Iterations(1);

// Flu at contact-network scale: the Markov Quilt Mechanism (Algorithm 2)
// sigma analysis over the 150-person household/commuter Bayesian network —
// a size the enumeration reference refuses outright (2^150 joint
// assignments) — under the structured variable-elimination backend.
void BM_FluContactNetworkAnalyze(benchmark::State& state) {
  const std::size_t households = static_cast<std::size_t>(state.range(0));
  const BayesianNetwork city =
      FluContactNetwork(households, /*household_size=*/4,
                        /*community_rate=*/0.05, /*transmission=*/0.3)
          .ValueOrDie();
  MqmAnalyzeOptions options;
  options.num_threads = 1;
  MqmAnalysis analysis;
  for (auto _ : state) {
    analysis = AnalyzeMarkovQuiltMechanism({city}, /*epsilon=*/5.0, options)
                   .ValueOrDie();
    benchmark::DoNotOptimize(analysis.sigma_max + 0.0);
  }
  state.counters["people"] = static_cast<double>(city.num_nodes());
  state.counters["sigma"] = analysis.sigma_max;
  state.counters["scored"] = static_cast<double>(analysis.scored_nodes);
  state.counters["dedup_ratio"] = analysis.dedup_ratio();
}
BENCHMARK(BM_FluContactNetworkAnalyze)->Arg(10)->Arg(30)->Unit(benchmark::kMillisecond);

void BM_WinfBackend(benchmark::State& state) {
  const auto backend = static_cast<WassersteinBackend>(state.range(0));
  const ConditionalOutputPair pair =
      FluCliqueModel::Contagion(24, 0.25).ValueOrDie()
          .CountQueryOutputPair()
          .ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(WassersteinInf(pair.mu_i, pair.mu_j, backend));
  }
  switch (backend) {
    case WassersteinBackend::kQuantile: state.SetLabel("quantile"); break;
    case WassersteinBackend::kMaxFlow: state.SetLabel("maxflow"); break;
    case WassersteinBackend::kLp: state.SetLabel("simplex LP"); break;
  }
}
BENCHMARK(BM_WinfBackend)->Arg(0)->Arg(1)->Arg(2);

}  // namespace
}  // namespace pf

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  pf::bench::PrintHeader(
      "Section 3.1 flu example: |error| of infected-count release "
      "(W = 2 vs group sensitivity 4)",
      {"eps=0.2", "eps=1", "eps=5"});
  pf::bench::PrintRow("Wasserstein Mechanism",
                      {pf::g_rows[0].err_wasserstein,
                       pf::g_rows[1].err_wasserstein,
                       pf::g_rows[2].err_wasserstein});
  pf::bench::PrintRow("GroupDP Laplace",
                      {pf::g_rows[0].err_group, pf::g_rows[1].err_group,
                       pf::g_rows[2].err_group});
  return 0;
}
