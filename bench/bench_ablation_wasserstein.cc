// Ablation (DESIGN.md §6): cost of the three W_inf backends as the support
// size grows. All three return identical distances (cross-checked in
// tests/wasserstein_test.cc); the closed-form quantile coupling is
// near-linear, the max-flow feasibility search is polynomial, and the
// simplex-LP feasibility search is the reference implementation of the
// transport-polytope formulation.
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "dist/wasserstein.h"

namespace pf {
namespace {

DiscreteDistribution RandomDistribution(std::size_t support, Rng* rng) {
  return DiscreteDistribution::FromMasses(rng->UniformSimplex(support))
      .ValueOrDie();
}

void BM_WassersteinBackend(benchmark::State& state) {
  const auto backend = static_cast<WassersteinBackend>(state.range(0));
  const std::size_t support = static_cast<std::size_t>(state.range(1));
  Rng rng(1234 + support);
  const DiscreteDistribution mu = RandomDistribution(support, &rng);
  const DiscreteDistribution nu = RandomDistribution(support, &rng);
  double w = 0.0;
  for (auto _ : state) {
    w = WassersteinInf(mu, nu, backend).ValueOrDie();
    benchmark::DoNotOptimize(w);
  }
  state.counters["support"] = static_cast<double>(support);
  state.counters["W_inf"] = w;
  switch (backend) {
    case WassersteinBackend::kQuantile: state.SetLabel("quantile"); break;
    case WassersteinBackend::kMaxFlow: state.SetLabel("maxflow"); break;
    case WassersteinBackend::kLp: state.SetLabel("simplex LP"); break;
  }
}

BENCHMARK(BM_WassersteinBackend)
    ->ArgsProduct({{0, 1, 2}, {4, 8, 16, 32}})
    ->Unit(benchmark::kMicrosecond);

// Larger supports for the scalable backends only.
BENCHMARK(BM_WassersteinBackend)
    ->ArgsProduct({{0, 1}, {64, 128}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pf

BENCHMARK_MAIN();
