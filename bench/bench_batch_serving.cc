// Scalar vs columnar batch serving throughput (the PR's acceptance bench):
// the same mixed-kind workload served through Session::SubmitBatch (one
// compiled query, one future, one clip+noise task per row) and through
// Session::SubmitColumnar (one compiled batch plan, one composed charge,
// one vectorized aggregate -> derive -> clip -> noise pass), across batch
// size x executor thread count on a T = 4096, k = 8 chain model.
//
// The acceptance claim is the items_per_second ratio of
// BM_ColumnarSubmit/1024/1 over BM_ScalarSubmitBatch/1024/1 (single
// thread, warm compile cache): >= 10x, with bit-identical released values
// (pinned by batch_serving_test, not re-checked here).
//
// CI runs this with --benchmark_format=json --benchmark_out=
// BENCH_batch_serving.json and archives the file.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "engine/engine.h"
#include "graphical/markov_chain.h"

namespace pf {
namespace {

constexpr std::size_t kLength = 4096;
constexpr std::size_t kStates = 8;
constexpr double kEpsilon = 0.5;

/// A lazy cycle over 8 states: irreducible, aperiodic, quick to analyze.
MarkovChain ServingChain() {
  Matrix transitions(kStates, kStates, 0.0);
  for (std::size_t s = 0; s < kStates; ++s) {
    transitions(s, s) = 0.5;
    transitions(s, (s + 1) % kStates) = 0.5;
  }
  return MarkovChain::Make(Vector(kStates, 1.0 / kStates),
                           std::move(transitions))
      .ValueOrDie();
}

std::unique_ptr<PrivacyEngine> ServingEngine(std::size_t threads) {
  EngineOptions options;
  options.num_threads = threads;
  // Unbounded queue: the scalar path must not shed its way to a fast
  // (error-filled) run at 4096 futures per call.
  options.max_queue_depth = 0;
  options.exact_max_nearby = 16;
  return PrivacyEngine::Create(
             ModelSpec::ChainClass({ServingChain()}, kLength), options)
      .ValueOrDie();
}

StateSequence ServingData() {
  StateSequence data(kLength);
  for (std::size_t i = 0; i < kLength; ++i) {
    data[i] = static_cast<int>((i * 5 + i / 7) % kStates);
  }
  return data;
}

/// The serving mix, cycled to `rows`: sums, means, per-state frequencies,
/// and histograms — all at one epsilon (one plan, one quilt), which is the
/// fleet-scale continual-release shape ROADMAP item 5 describes.
std::vector<QuerySpec> ScalarSpecs(std::size_t rows) {
  std::vector<QuerySpec> specs;
  specs.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    switch (i % 4) {
      case 0: specs.push_back(QuerySpec::Sum(kEpsilon)); break;
      case 1: specs.push_back(QuerySpec::Mean(kEpsilon)); break;
      case 2:
        specs.push_back(QuerySpec::StateFrequency(
            static_cast<int>(i % kStates), kEpsilon));
        break;
      default: specs.push_back(QuerySpec::FrequencyHistogram(kEpsilon)); break;
    }
  }
  return specs;
}

BatchQuerySpec ColumnarSpecs(std::size_t rows) {
  BatchQuerySpec batch;
  for (QuerySpec& spec : ScalarSpecs(rows)) batch.Add(std::move(spec));
  return batch;
}

/// Warm the compile cache (and the one sigma analysis) so the timed loops
/// measure serving, not analysis.
void Warm(PrivacyEngine* engine) {
  for (const QuerySpec& spec : ScalarSpecs(4 + kStates)) {
    benchmark::DoNotOptimize(engine->Compile(spec).ValueOrDie());
  }
}

void BM_ScalarSubmitBatch(benchmark::State& state) {
  const std::size_t rows = static_cast<std::size_t>(state.range(0));
  const std::size_t threads = static_cast<std::size_t>(state.range(1));
  auto engine = ServingEngine(threads);
  Warm(engine.get());
  const StateSequence data = ServingData();
  const std::vector<QuerySpec> specs = ScalarSpecs(rows);
  SessionOptions options;
  options.seed = 42;
  for (auto _ : state) {
    auto session = engine->CreateSession(options);
    auto futures = session->SubmitBatch(specs, data);
    for (auto& f : futures) {
      Result<ReleaseResult> r = f.get();
      if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
      bench::DoNotOptimize(r);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rows));
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["threads"] = static_cast<double>(threads);
}

void BM_ColumnarSubmit(benchmark::State& state) {
  const std::size_t rows = static_cast<std::size_t>(state.range(0));
  const std::size_t threads = static_cast<std::size_t>(state.range(1));
  auto engine = ServingEngine(threads);
  Warm(engine.get());
  const StateSequence data = ServingData();
  const BatchQuerySpec batch = ColumnarSpecs(rows);
  SessionOptions options;
  options.seed = 42;
  for (auto _ : state) {
    auto session = engine->CreateSession(options);
    Result<BatchReleaseResult> r = session->SubmitColumnar(batch, data).get();
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    bench::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rows));
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["threads"] = static_cast<double>(threads);
}

/// Compile-only leg: what the plan frontend costs when the batch shape is
/// fresh each call (the worst case for SubmitColumnar; the engine's
/// compiled-query cache still serves the per-unique lookups).
void BM_CompileBatchPlan(benchmark::State& state) {
  const std::size_t rows = static_cast<std::size_t>(state.range(0));
  auto engine = ServingEngine(1);
  Warm(engine.get());
  const BatchQuerySpec batch = ColumnarSpecs(rows);
  for (auto _ : state) {
    Result<CompiledBatchPlan> plan =
        CompileBatchPlan(engine.get(), batch, kLength);
    if (!plan.ok()) state.SkipWithError(plan.status().ToString().c_str());
    bench::DoNotOptimize(plan);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rows));
}

// Wall-clock throughput: both paths hand work to executor threads, so
// main-thread CPU time under-counts the scalar path's per-row dispatch.
BENCHMARK(BM_ScalarSubmitBatch)
    ->ArgsProduct({{64, 256, 1024, 4096}, {1, 4}})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ColumnarSubmit)
    ->ArgsProduct({{64, 256, 1024, 4096}, {1, 4}})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CompileBatchPlan)->Arg(1024)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pf

BENCHMARK_MAIN();
