// Serving-path benchmarks for the PrivacyEngine/Session front door:
//
//  - BM_SessionSubmitBatch: end-to-end batch throughput (compile from the
//    warm caches, charge the ledger, evaluate + noise on the executor) at
//    1/2/4/8 worker threads over 256 queries against a 10k-step chain;
//  - BM_CompileWarm: the per-request cost of a warm Compile (both caches
//    hot) — the fixed overhead every served query pays;
//  - BM_SessionCharge: ledger-only cost (budget pricing + quilt check +
//    ticketing) isolated on a sensitivity model with trivial queries.
//
// Together these bound the engine's serving overhead on top of the raw
// mechanism SPI benched in bench_parallel_analyze.
#include <benchmark/benchmark.h>

#include <future>
#include <vector>

#include "engine/engine.h"
#include "graphical/markov_chain.h"

namespace pf {
namespace {

constexpr std::size_t kLength = 10000;
constexpr int kBatch = 256;

MarkovChain BenchChain() {
  return MarkovChain::Make({0.5, 0.5}, Matrix{{0.9, 0.1}, {0.2, 0.8}})
      .ValueOrDie();
}

void BM_SessionSubmitBatch(benchmark::State& state) {
  EngineOptions options;
  options.num_threads = static_cast<std::size_t>(state.range(0));
  auto engine = PrivacyEngine::Create(
                    ModelSpec::ChainClass({BenchChain()}, kLength), options)
                    .ValueOrDie();
  Rng rng(17);
  std::vector<StateSequence> databases;
  for (int d = 0; d < 8; ++d) {
    databases.push_back(BenchChain().Sample(kLength, &rng));
  }
  // Warm both caches so iterations measure serving, not analysis.
  (void)engine->Compile(QuerySpec::FrequencyHistogram(1.0)).ValueOrDie();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    SessionOptions session_options;
    session_options.seed = seed++;
    auto session = engine->CreateSession(session_options);
    std::vector<std::future<Result<ReleaseResult>>> futures;
    futures.reserve(kBatch);
    for (int q = 0; q < kBatch; ++q) {
      futures.push_back(session->Submit(QuerySpec::FrequencyHistogram(1.0),
                                        databases[q % databases.size()]));
    }
    double sum = 0.0;
    for (auto& f : futures) sum += f.get().ValueOrDie().value[0];
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  state.counters["threads"] = static_cast<double>(options.num_threads);
}
BENCHMARK(BM_SessionSubmitBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_CompileWarm(benchmark::State& state) {
  auto engine =
      PrivacyEngine::Create(ModelSpec::ChainClass({BenchChain()}, kLength))
          .ValueOrDie();
  (void)engine->Compile(QuerySpec::Mean(1.0)).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->Compile(QuerySpec::Mean(1.0)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompileWarm);

void BM_SessionCharge(benchmark::State& state) {
  auto engine =
      PrivacyEngine::Create(ModelSpec::Sensitivity(1.0)).ValueOrDie();
  const StateSequence tiny{1, 0, 1};
  for (auto _ : state) {
    state.PauseTiming();
    auto session = engine->CreateSession();
    state.ResumeTiming();
    for (int k = 0; k < 64; ++k) {
      benchmark::DoNotOptimize(session->Release(QuerySpec::Sum(1.0), tiny));
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SessionCharge);

}  // namespace
}  // namespace pf

BENCHMARK_MAIN();
