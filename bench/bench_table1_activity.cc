// Regenerates Table 1: L1 error of the relative-frequency histograms for the
// aggregate and individual tasks on the three activity groups, epsilon = 1,
// averaged over 20 random trials.
//
// Mechanisms: DP (person-level differential privacy, aggregate task only),
// GroupDP (per-chain groups), GK16 (N/A — spectral norm >= 1), MQMApprox and
// MQMExact. Expected ordering (paper): MQMExact < MQMApprox << GroupDP, with
// DP in between GroupDP and MQM on the aggregate task and undefined for the
// individual task.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>

#include "baselines/group_dp.h"
#include "baselines/laplace_dp.h"
#include "bench/activity_experiment.h"
#include "bench/bench_util.h"
#include "common/histogram.h"

namespace pf {
namespace {

constexpr int kTrials = 20;
constexpr double kEpsilon = 1.0;

struct Table1Row {
  double dp_agg = 0.0;
  double group_agg = 0.0, group_indi = 0.0;
  double approx_agg = 0.0, approx_indi = 0.0;
  double exact_agg = 0.0, exact_indi = 0.0;
  bool gk16_applicable = false;
};

Table1Row g_rows[3];

// Mean L1 error over kTrials of a 4-bin histogram with the given per-bin
// Laplace scale.
double HistError(double scale, Rng* rng) {
  double total = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    for (std::size_t j = 0; j < kNumActivityStates; ++j) {
      total += std::fabs(rng->Laplace(scale));
    }
  }
  return total / kTrials;
}

void BM_Table1Activity(benchmark::State& state) {
  const auto group = bench::kAllGroups[state.range(0)];
  const bench::ActivityExperiment& exp = bench::GetActivityExperiment(group);
  const auto chains = exp.data.AllChains();
  const double total = static_cast<double>(exp.data.TotalObservations());
  Rng rng(777 + state.range(0));
  Table1Row row;
  row.gk16_applicable = exp.gk16_applicable;
  for (auto _ : state) {
    // --- Aggregate task: one pooled histogram, 2/total-Lipschitz. ---
    const double lipschitz_agg = 2.0 / total;
    // DP baseline hides one *person's* entire contribution (the paper's DP
    // row): sensitivity 2 * max person observations / total.
    std::size_t max_person = 0;
    for (const ActivityPerson& p : exp.data.people) {
      max_person = std::max(max_person, p.TotalObservations());
    }
    const double dp_sens = 2.0 * static_cast<double>(max_person) / total;
    row.dp_agg = HistError(dp_sens / kEpsilon, &rng);
    const double group_sens_agg =
        RelativeFrequencyGroupSensitivity(chains).ValueOrDie();
    row.group_agg = HistError(group_sens_agg / kEpsilon, &rng);
    row.approx_agg = HistError(lipschitz_agg * exp.sigma_approx, &rng);
    row.exact_agg = HistError(lipschitz_agg * exp.sigma_exact, &rng);

    // --- Individual task: one histogram per person; report the mean. ---
    double group_sum = 0.0, approx_sum = 0.0, exact_sum = 0.0;
    for (const ActivityPerson& person : exp.data.people) {
      const double t_p = static_cast<double>(person.TotalObservations());
      const double lipschitz_p = 2.0 / t_p;
      const double group_sens_p =
          RelativeFrequencyGroupSensitivity(person.chains).ValueOrDie();
      group_sum += HistError(group_sens_p / kEpsilon, &rng);
      approx_sum += HistError(lipschitz_p * exp.sigma_approx, &rng);
      exact_sum += HistError(lipschitz_p * exp.sigma_exact, &rng);
    }
    const double n = static_cast<double>(exp.data.people.size());
    row.group_indi = group_sum / n;
    row.approx_indi = approx_sum / n;
    row.exact_indi = exact_sum / n;
  }
  g_rows[state.range(0)] = row;
  state.counters["agg_DP"] = row.dp_agg;
  state.counters["agg_GroupDP"] = row.group_agg;
  state.counters["agg_MQMApprox"] = row.approx_agg;
  state.counters["agg_MQMExact"] = row.exact_agg;
  state.counters["indi_GroupDP"] = row.group_indi;
  state.counters["indi_MQMApprox"] = row.approx_indi;
  state.counters["indi_MQMExact"] = row.exact_indi;
}

BENCHMARK(BM_Table1Activity)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pf

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  pf::bench::PrintHeader(
      "Table 1: L1 error, activity histograms (epsilon = 1, 20 trials)",
      {"cyc agg", "cyc indi", "old agg", "old indi", "over agg", "over indi"});
  const auto& r = pf::g_rows;
  pf::bench::PrintRow("DP", {r[0].dp_agg, -1.0, r[1].dp_agg, -1.0,
                             r[2].dp_agg, -1.0});
  pf::bench::PrintRow("GroupDP",
                      {r[0].group_agg, r[0].group_indi, r[1].group_agg,
                       r[1].group_indi, r[2].group_agg, r[2].group_indi});
  pf::bench::PrintRow("GK16 (N/A)", {-1.0, -1.0, -1.0, -1.0, -1.0, -1.0});
  pf::bench::PrintRow("MQMApprox",
                      {r[0].approx_agg, r[0].approx_indi, r[1].approx_agg,
                       r[1].approx_indi, r[2].approx_agg, r[2].approx_indi});
  pf::bench::PrintRow("MQMExact",
                      {r[0].exact_agg, r[0].exact_indi, r[1].exact_agg,
                       r[1].exact_indi, r[2].exact_agg, r[2].exact_indi});
  std::printf("\n(-1 marks N/A cells, matching the paper's N/A entries.)\n");
  return 0;
}
