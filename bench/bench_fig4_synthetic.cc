// Regenerates Figure 4, upper row: L1 error of the released frequency of
// state 1 vs. alpha for epsilon in {0.2, 1, 5} on synthetic binary chains of
// length T = 100 with Theta = [alpha, 1 - alpha] (all initial distributions,
// Appendix C.4). Mechanisms: GK16, MQMApprox, MQMExact; GroupDP's error
// (~1/epsilon, not plotted in the paper's figure) is reported alongside.
//
// Expected shape (paper): errors fall as alpha grows (Theta narrows); GK16
// is inapplicable left of a threshold alpha (independent of epsilon); in the
// applicable region GK16 loses to MQM first and wins for the narrowest
// classes; MQMExact <= MQMApprox everywhere.
#include <benchmark/benchmark.h>

#include <cmath>
#include <map>

#include "baselines/gk16.h"
#include "bench/bench_util.h"
#include "data/synthetic.h"
#include "pufferfish/mqm_approx.h"
#include "pufferfish/mqm_exact.h"

namespace pf {
namespace {

constexpr std::size_t kLength = 100;
constexpr int kTrials = 500;
const double kEpsilons[] = {0.2, 1.0, 5.0};
const double kAlphas[] = {0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4};

struct ComboResult {
  double sigma_exact = 0.0;
  double sigma_approx = 0.0;
  double sigma_gk16 = 0.0;  // Infinite when GK16 is inapplicable.
  double err_exact = 0.0;
  double err_approx = 0.0;
  double err_gk16 = 0.0;
  double err_group = 0.0;
};

std::map<std::pair<int, int>, ComboResult>& Results() {
  static auto* results = new std::map<std::pair<int, int>, ComboResult>();
  return *results;
}

// Noise scales are computed once per (epsilon, alpha) point; the benchmark
// iterations then run the 500-trial release experiment of Section 5.2.
const ComboResult& Analyze(int eps_idx, int alpha_idx) {
  const auto key = std::make_pair(eps_idx, alpha_idx);
  auto it = Results().find(key);
  if (it != Results().end()) return it->second;
  const double epsilon = kEpsilons[eps_idx];
  const double alpha = kAlphas[alpha_idx];
  const auto cls =
      BinaryChainIntervalClass::Make(alpha, 1.0 - alpha).ValueOrDie();
  ComboResult r;
  ChainMqmOptions exact_options;
  exact_options.epsilon = epsilon;
  exact_options.max_nearby = 90;
  r.sigma_exact = MqmExactAnalyzeFreeInitial(cls.TransitionGrid(0.1), kLength,
                                             exact_options)
                      .ValueOrDie()
                      .sigma_max;
  ChainMqmOptions approx_options;
  approx_options.epsilon = epsilon;
  approx_options.max_nearby = 0;
  r.sigma_approx =
      MqmApproxAnalyze(cls.Summary(), kLength, approx_options).ValueOrDie().sigma_max;
  r.sigma_gk16 =
      Gk16Analyze(cls.TransitionGrid(0.1), kLength, epsilon).ValueOrDie().sigma;
  return Results().emplace(key, r).first->second;
}

void BM_Fig4Synthetic(benchmark::State& state) {
  const int eps_idx = static_cast<int>(state.range(0));
  const int alpha_idx = static_cast<int>(state.range(1));
  const double epsilon = kEpsilons[eps_idx];
  const double alpha = kAlphas[alpha_idx];
  const auto cls =
      BinaryChainIntervalClass::Make(alpha, 1.0 - alpha).ValueOrDie();
  ComboResult r = Analyze(eps_idx, alpha_idx);
  // Section 5.2 protocol: draw theta and a dataset per trial, release the
  // frequency of state 1 (1/T-Lipschitz), average |error| over trials.
  Rng rng(10007 * (eps_idx + 1) + alpha_idx);
  const double lipschitz = 1.0 / static_cast<double>(kLength);
  for (auto _ : state) {
    double sum_exact = 0.0, sum_approx = 0.0, sum_gk = 0.0, sum_group = 0.0;
    for (int t = 0; t < kTrials; ++t) {
      benchmark::DoNotOptimize(
          SampleBinaryChainDataset(cls, kLength, &rng).ValueOrDie());
      sum_exact += std::fabs(rng.Laplace(lipschitz * r.sigma_exact));
      sum_approx += std::fabs(rng.Laplace(lipschitz * r.sigma_approx));
      if (std::isfinite(r.sigma_gk16)) {
        sum_gk += std::fabs(rng.Laplace(lipschitz * r.sigma_gk16));
      }
      sum_group += std::fabs(rng.Laplace(1.0 / epsilon));
    }
    r.err_exact = sum_exact / kTrials;
    r.err_approx = sum_approx / kTrials;
    r.err_gk16 = std::isfinite(r.sigma_gk16) ? sum_gk / kTrials : -1.0;
    r.err_group = sum_group / kTrials;
  }
  Results()[std::make_pair(eps_idx, alpha_idx)] = r;
  state.counters["alpha"] = alpha;
  state.counters["epsilon"] = epsilon;
  state.counters["err_MQMExact"] = r.err_exact;
  state.counters["err_MQMApprox"] = r.err_approx;
  state.counters["err_GK16"] = r.err_gk16;  // -1 marks "not applicable".
  state.counters["err_GroupDP"] = r.err_group;
}

BENCHMARK(BM_Fig4Synthetic)
    ->ArgsProduct({{0, 1, 2}, {0, 1, 2, 3, 4, 5, 6}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pf

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Paper-style series (Figure 4 upper row).
  for (int e = 0; e < 3; ++e) {
    pf::bench::PrintHeader(
        "Figure 4(" + std::string(1, static_cast<char>('a' + e)) +
            "): synthetic binary chain, epsilon = " +
            std::to_string(pf::kEpsilons[e]),
        {"alpha", "GK16", "MQMApprox", "MQMExact", "GroupDP"});
    for (int a = 0; a < 7; ++a) {
      const auto& r = pf::Results()[{e, a}];
      pf::bench::PrintRow("", {pf::kAlphas[a], r.err_gk16, r.err_approx,
                               r.err_exact, r.err_group});
    }
  }
  std::printf("\n(GK16 = -1 marks the inapplicable region: influence-matrix "
              "spectral norm >= 1, left of the paper's dashed line.)\n");
  return 0;
}
