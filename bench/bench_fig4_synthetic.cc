// Regenerates Figure 4, upper row: L1 error of the released frequency of
// state 1 vs. alpha for epsilon in {0.2, 1, 5} on synthetic binary chains of
// length T = 100 with Theta = [alpha, 1 - alpha] (all initial distributions,
// Appendix C.4). Mechanisms: GK16, MQMApprox, MQMExact; GroupDP's error
// (~1/epsilon, not plotted in the paper's figure) is reported alongside.
//
// Expected shape (paper): errors fall as alpha grows (Theta narrows); GK16
// is inapplicable left of a threshold alpha (independent of epsilon); in the
// applicable region GK16 loses to MQM first and wins for the narrowest
// classes; MQMExact <= MQMApprox everywhere.
#include <benchmark/benchmark.h>

#include <cmath>
#include <map>

#include "bench/bench_util.h"
#include "data/synthetic.h"
#include "pufferfish/analysis_cache.h"
#include "pufferfish/mechanism.h"

namespace pf {
namespace {

constexpr std::size_t kLength = 100;
constexpr int kTrials = 500;
const double kEpsilons[] = {0.2, 1.0, 5.0};
const double kAlphas[] = {0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4};

struct ComboResult {
  double sigma_exact = 0.0;
  double sigma_approx = 0.0;
  double sigma_gk16 = 0.0;  // Infinite when GK16 is inapplicable.
  double err_exact = 0.0;
  double err_approx = 0.0;
  double err_gk16 = 0.0;
  double err_group = 0.0;
};

std::map<std::pair<int, int>, ComboResult>& Results() {
  static auto* results = new std::map<std::pair<int, int>, ComboResult>();
  return *results;
}

// Plans are computed once per (epsilon, alpha) point through a shared
// AnalysisCache (the engine path a serving system would take); the
// benchmark iterations then run the 500-trial release experiment of
// Section 5.2 as one ReleaseBatch per mechanism.
AnalysisCache& PlanCache() {
  static auto* cache = new AnalysisCache();
  return *cache;
}

std::shared_ptr<const MechanismPlan> ExactPlan(
    const BinaryChainIntervalClass& cls, double epsilon) {
  ChainUnifiedOptions options;
  options.max_nearby = 90;
  return PlanCache()
      .GetOrAnalyze(MqmExactFreeInitialUnified(cls.TransitionGrid(0.1),
                                               kLength, options),
                    epsilon)
      .ValueOrDie();
}

std::shared_ptr<const MechanismPlan> ApproxPlan(
    const BinaryChainIntervalClass& cls, double epsilon) {
  ChainUnifiedOptions options;
  options.max_nearby = 0;  // Lemma 4.9 automatic width.
  return PlanCache()
      .GetOrAnalyze(MqmApproxUnified(cls.Summary(), kLength, options), epsilon)
      .ValueOrDie();
}

std::shared_ptr<const MechanismPlan> Gk16Plan(
    const BinaryChainIntervalClass& cls, double epsilon) {
  return PlanCache()
      .GetOrAnalyze(Gk16Unified(cls.TransitionGrid(0.1), kLength), epsilon)
      .ValueOrDie();
}

const ComboResult& Analyze(int eps_idx, int alpha_idx) {
  const auto key = std::make_pair(eps_idx, alpha_idx);
  auto it = Results().find(key);
  if (it != Results().end()) return it->second;
  const double epsilon = kEpsilons[eps_idx];
  const double alpha = kAlphas[alpha_idx];
  const auto cls =
      BinaryChainIntervalClass::Make(alpha, 1.0 - alpha).ValueOrDie();
  ComboResult r;
  r.sigma_exact = ExactPlan(cls, epsilon)->sigma;
  r.sigma_approx = ApproxPlan(cls, epsilon)->sigma;
  r.sigma_gk16 = Gk16Plan(cls, epsilon)->gk16.sigma;
  return Results().emplace(key, r).first->second;
}

// Mean |noise| of a batch of zero-truth releases at the given scale.
double MeanAbsOfBatch(const MechanismPlan& plan, double lipschitz, Rng* rng) {
  if (!plan.applicable) return -1.0;  // Marks "not applicable" in the table.
  const Vector noisy =
      ReleaseBatch(plan, std::vector<double>(kTrials, 0.0), lipschitz, rng)
          .ValueOrDie();
  double sum = 0.0;
  for (double v : noisy) sum += std::fabs(v);
  return sum / kTrials;
}

void BM_Fig4Synthetic(benchmark::State& state) {
  const int eps_idx = static_cast<int>(state.range(0));
  const int alpha_idx = static_cast<int>(state.range(1));
  const double epsilon = kEpsilons[eps_idx];
  const double alpha = kAlphas[alpha_idx];
  const auto cls =
      BinaryChainIntervalClass::Make(alpha, 1.0 - alpha).ValueOrDie();
  ComboResult r = Analyze(eps_idx, alpha_idx);
  // Section 5.2 protocol: draw theta and a dataset per trial, release the
  // frequency of state 1 (1/T-Lipschitz), average |error| over trials. Each
  // mechanism's 500 trials are one ReleaseBatch against its plan.
  Rng rng(10007 * (eps_idx + 1) + alpha_idx);
  const double lipschitz = 1.0 / static_cast<double>(kLength);
  // Plan lookups are loop-invariant (Analyze() above warmed the cache);
  // only the Section 5.2 trial work belongs in the timed region.
  const auto approx_plan = ApproxPlan(cls, epsilon);
  const auto gk16_plan = Gk16Plan(cls, epsilon);
  const auto group_plan =
      PlanCache()
          .GetOrAnalyze(GroupDpUnified(1.0), epsilon)  // One chain, one group.
          .ValueOrDie();
  const auto exact_plan = ExactPlan(cls, epsilon);
  for (auto _ : state) {
    for (int t = 0; t < kTrials; ++t) {
      benchmark::DoNotOptimize(
          SampleBinaryChainDataset(cls, kLength, &rng).ValueOrDie());
    }
    r.err_exact = MeanAbsOfBatch(*exact_plan, lipschitz, &rng);
    r.err_approx = MeanAbsOfBatch(*approx_plan, lipschitz, &rng);
    r.err_gk16 = MeanAbsOfBatch(*gk16_plan, lipschitz, &rng);
    r.err_group = MeanAbsOfBatch(*group_plan, 1.0, &rng);
  }
  Results()[std::make_pair(eps_idx, alpha_idx)] = r;
  state.counters["alpha"] = alpha;
  state.counters["epsilon"] = epsilon;
  state.counters["err_MQMExact"] = r.err_exact;
  state.counters["err_MQMApprox"] = r.err_approx;
  state.counters["err_GK16"] = r.err_gk16;  // -1 marks "not applicable".
  state.counters["err_GroupDP"] = r.err_group;
}

BENCHMARK(BM_Fig4Synthetic)
    ->ArgsProduct({{0, 1, 2}, {0, 1, 2, 3, 4, 5, 6}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pf

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Paper-style series (Figure 4 upper row).
  for (int e = 0; e < 3; ++e) {
    pf::bench::PrintHeader(
        "Figure 4(" + std::string(1, static_cast<char>('a' + e)) +
            "): synthetic binary chain, epsilon = " +
            std::to_string(pf::kEpsilons[e]),
        {"alpha", "GK16", "MQMApprox", "MQMExact", "GroupDP"});
    for (int a = 0; a < 7; ++a) {
      const auto& r = pf::Results()[{e, a}];
      pf::bench::PrintRow("", {pf::kAlphas[a], r.err_gk16, r.err_approx,
                               r.err_exact, r.err_group});
    }
  }
  std::printf("\n(GK16 = -1 marks the inapplicable region: influence-matrix "
              "spectral norm >= 1, left of the paper's dashed line.)\n");
  return 0;
}
