// Regenerates Figure 4, upper row: L1 error of the released frequency of
// state 1 vs. alpha for epsilon in {0.2, 1, 5} on synthetic binary chains of
// length T = 100 with Theta = [alpha, 1 - alpha] (all initial distributions,
// Appendix C.4). Mechanisms: GK16, MQMApprox, MQMExact; GroupDP's error
// (~1/epsilon, not plotted in the paper's figure) is reported alongside.
//
// Expected shape (paper): errors fall as alpha grows (Theta narrows); GK16
// is inapplicable left of a threshold alpha (independent of epsilon); in the
// applicable region GK16 loses to MQM first and wins for the narrowest
// classes; MQMExact <= MQMApprox everywhere.
#include <benchmark/benchmark.h>

#include <cmath>
#include <map>
#include <memory>
#include <utility>

#include "bench/bench_util.h"
#include "data/synthetic.h"
#include "engine/engine.h"

namespace pf {
namespace {

constexpr std::size_t kLength = 100;
constexpr int kTrials = 500;
const double kEpsilons[] = {0.2, 1.0, 5.0};
const double kAlphas[] = {0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4};

struct ComboResult {
  double sigma_exact = 0.0;
  double sigma_approx = 0.0;
  double sigma_gk16 = 0.0;  // Infinite when GK16 is inapplicable.
  double err_exact = 0.0;
  double err_approx = 0.0;
  double err_gk16 = 0.0;
  double err_group = 0.0;
};

std::map<std::pair<int, int>, ComboResult>& Results() {
  static auto* results = new std::map<std::pair<int, int>, ComboResult>();
  return *results;
}

// Plans are compiled once per (epsilon, alpha) point through per-alpha
// PrivacyEngines (the serving front door, caches included); the benchmark
// iterations then run the 500-trial release experiment of Section 5.2 as
// one ReleaseBatch per mechanism's plan (noise-magnitude harness — the
// plan SPI, since the trials release synthetic zero truths).
PrivacyEngine& EngineFor(int alpha_idx, MechanismKind kind) {
  static auto* engines =
      new std::map<std::pair<int, int>, std::unique_ptr<PrivacyEngine>>();
  const auto key = std::make_pair(alpha_idx, static_cast<int>(kind));
  auto it = engines->find(key);
  if (it != engines->end()) return *it->second;
  const auto cls =
      BinaryChainIntervalClass::Make(kAlphas[alpha_idx],
                                     1.0 - kAlphas[alpha_idx])
          .ValueOrDie();
  EngineOptions options;
  options.mechanism = kind;
  ModelSpec model = ModelSpec::ChainClass({}, kLength);
  switch (kind) {
    case MechanismKind::kMqmExact:
      options.exact_max_nearby = 90;
      model = ModelSpec::ChainClassFreeInitial(cls.TransitionGrid(0.1),
                                               kLength);
      break;
    case MechanismKind::kMqmApprox:
      model = ModelSpec::ChainSummary(cls.Summary(), 2, kLength);
      break;
    case MechanismKind::kGk16:
      model = ModelSpec::ChainClassFreeInitial(cls.TransitionGrid(0.1),
                                               kLength);
      break;
    default:  // GroupDP: one chain, one group.
      options.mechanism = MechanismKind::kGroupDp;
      model = ModelSpec::GroupSensitivity(1.0);
      break;
  }
  auto engine = PrivacyEngine::Create(std::move(model), options).ValueOrDie();
  return *engines->emplace(key, std::move(engine)).first->second;
}

std::shared_ptr<const MechanismPlan> PlanFor(int alpha_idx, MechanismKind kind,
                                             double epsilon) {
  // The released query is the frequency of state 1 (1/T-Lipschitz); the
  // engine compiles it against each mechanism's plan at this epsilon. The
  // GroupDP baseline's model is lengthless, so its plan is compiled from
  // the Sum spec (the plan — sigma = sensitivity/epsilon — is identical).
  const QuerySpec spec = kind == MechanismKind::kGroupDp
                             ? QuerySpec::Sum(epsilon)
                             : QuerySpec::StateFrequency(1, epsilon);
  return EngineFor(alpha_idx, kind).Compile(spec).ValueOrDie().plan;
}

const ComboResult& Analyze(int eps_idx, int alpha_idx) {
  const auto key = std::make_pair(eps_idx, alpha_idx);
  auto it = Results().find(key);
  if (it != Results().end()) return it->second;
  const double epsilon = kEpsilons[eps_idx];
  ComboResult r;
  r.sigma_exact = PlanFor(alpha_idx, MechanismKind::kMqmExact, epsilon)->sigma;
  r.sigma_approx =
      PlanFor(alpha_idx, MechanismKind::kMqmApprox, epsilon)->sigma;
  r.sigma_gk16 =
      PlanFor(alpha_idx, MechanismKind::kGk16, epsilon)->gk16.sigma;
  return Results().emplace(key, r).first->second;
}

// Mean |noise| of a batch of zero-truth releases at the given scale.
double MeanAbsOfBatch(const MechanismPlan& plan, double lipschitz, Rng* rng) {
  if (!plan.applicable) return -1.0;  // Marks "not applicable" in the table.
  const Vector noisy =
      ReleaseBatch(plan, std::vector<double>(kTrials, 0.0), lipschitz, rng)
          .ValueOrDie();
  double sum = 0.0;
  for (double v : noisy) sum += std::fabs(v);
  return sum / kTrials;
}

void BM_Fig4Synthetic(benchmark::State& state) {
  const int eps_idx = static_cast<int>(state.range(0));
  const int alpha_idx = static_cast<int>(state.range(1));
  const double epsilon = kEpsilons[eps_idx];
  const double alpha = kAlphas[alpha_idx];
  const auto cls =
      BinaryChainIntervalClass::Make(alpha, 1.0 - alpha).ValueOrDie();
  ComboResult r = Analyze(eps_idx, alpha_idx);
  // Section 5.2 protocol: draw theta and a dataset per trial, release the
  // frequency of state 1 (1/T-Lipschitz), average |error| over trials. Each
  // mechanism's 500 trials are one ReleaseBatch against its plan.
  Rng rng(10007 * (eps_idx + 1) + alpha_idx);
  const double lipschitz = 1.0 / static_cast<double>(kLength);
  // Plan lookups are loop-invariant (Analyze() above warmed the engines'
  // caches); only the Section 5.2 trial work belongs in the timed region.
  const auto approx_plan = PlanFor(alpha_idx, MechanismKind::kMqmApprox, epsilon);
  const auto gk16_plan = PlanFor(alpha_idx, MechanismKind::kGk16, epsilon);
  const auto group_plan = PlanFor(alpha_idx, MechanismKind::kGroupDp, epsilon);
  const auto exact_plan = PlanFor(alpha_idx, MechanismKind::kMqmExact, epsilon);
  for (auto _ : state) {
    for (int t = 0; t < kTrials; ++t) {
      benchmark::DoNotOptimize(
          SampleBinaryChainDataset(cls, kLength, &rng).ValueOrDie());
    }
    r.err_exact = MeanAbsOfBatch(*exact_plan, lipschitz, &rng);
    r.err_approx = MeanAbsOfBatch(*approx_plan, lipschitz, &rng);
    r.err_gk16 = MeanAbsOfBatch(*gk16_plan, lipschitz, &rng);
    r.err_group = MeanAbsOfBatch(*group_plan, 1.0, &rng);
  }
  Results()[std::make_pair(eps_idx, alpha_idx)] = r;
  state.counters["alpha"] = alpha;
  state.counters["epsilon"] = epsilon;
  state.counters["err_MQMExact"] = r.err_exact;
  state.counters["err_MQMApprox"] = r.err_approx;
  state.counters["err_GK16"] = r.err_gk16;  // -1 marks "not applicable".
  state.counters["err_GroupDP"] = r.err_group;
}

BENCHMARK(BM_Fig4Synthetic)
    ->ArgsProduct({{0, 1, 2}, {0, 1, 2, 3, 4, 5, 6}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pf

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Paper-style series (Figure 4 upper row).
  for (int e = 0; e < 3; ++e) {
    pf::bench::PrintHeader(
        "Figure 4(" + std::string(1, static_cast<char>('a' + e)) +
            "): synthetic binary chain, epsilon = " +
            std::to_string(pf::kEpsilons[e]),
        {"alpha", "GK16", "MQMApprox", "MQMExact", "GroupDP"});
    for (int a = 0; a < 7; ++a) {
      const auto& r = pf::Results()[{e, a}];
      pf::bench::PrintRow("", {pf::kAlphas[a], r.err_gk16, r.err_approx,
                               r.err_exact, r.err_group});
    }
  }
  std::printf("\n(GK16 = -1 marks the inapplicable region: influence-matrix "
              "spectral norm >= 1, left of the paper's dashed line.)\n");
  return 0;
}
