// Ablation (DESIGN.md §6): the MQMApprox/MQMExact noise gap as a function of
// chain mixing. MQMApprox's Lemma 4.8 bound is driven by (pi_min, g) only.
// Both sigmas fall as mixing speeds up, but the exact Eq. (5) influence
// falls faster: the *relative* approx/exact overhead grows with the switch
// probability (the bound's slack is proportionally largest exactly when
// little noise is needed). This quantifies the paper's recommendation:
// MQMExact when its cost is affordable, MQMApprox when data is plentiful
// enough to absorb the constant-factor extra noise.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "pufferfish/framework.h"
#include "pufferfish/mqm_approx.h"
#include "pufferfish/mqm_exact.h"

namespace pf {
namespace {

constexpr std::size_t kLength = 500;

void BM_ExactVsApprox(benchmark::State& state) {
  const double alpha = static_cast<double>(state.range(0)) / 100.0;
  const double p_stay = 1.0 - alpha;  // Sticky chain: diagonal 1 - alpha.
  const Matrix p = BinaryChainIntervalClass::TransitionFor(p_stay, p_stay);
  const MarkovChain chain =
      MarkovChain::Make({0.5, 0.5}, p).ValueOrDie();
  ChainMqmOptions exact_options;
  exact_options.epsilon = 1.0;
  exact_options.max_nearby = 220;
  ChainMqmOptions approx_options;
  approx_options.epsilon = 1.0;
  approx_options.max_nearby = 0;
  double sigma_exact = 0.0, sigma_approx = 0.0;
  for (auto _ : state) {
    sigma_exact =
        MqmExactAnalyze({chain}, kLength, exact_options).ValueOrDie().sigma_max;
    sigma_approx =
        MqmApproxAnalyze({chain}, kLength, approx_options).ValueOrDie().sigma_max;
    benchmark::DoNotOptimize(sigma_exact);
  }
  state.counters["switch_prob"] = alpha;
  state.counters["sigma_exact"] = sigma_exact;
  state.counters["sigma_approx"] = sigma_approx;
  state.counters["approx_over_exact"] = sigma_approx / sigma_exact;
}

BENCHMARK(BM_ExactVsApprox)
    ->Arg(2)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Arg(40)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pf

BENCHMARK_MAIN();
