// Shared helpers for the benchmark/experiment binaries. Each binary
// regenerates one table or figure of the paper (see DESIGN.md §3): the
// google-benchmark timing machinery measures the noise-scale computations
// (Table 2's quantity), and custom counters report the utility numbers
// (L1 errors) that the paper's figures and tables plot.
#ifndef PUFFERFISH_BENCH_BENCH_UTIL_H_
#define PUFFERFISH_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/matrix.h"
#include "common/random.h"

namespace pf {
namespace bench {

/// \brief Forces the compiler to consider `value` live without reading or
/// mutating it: the hot-loop guard for benchmarked results. Takes a const
/// reference on purpose — the escaped asm operand is the object's address,
/// so the value itself is never copied, and a `const T&` overload (unlike
/// the common `T&` one) accepts rvalues and computed temporaries directly.
/// The "memory" clobber stops the optimizer from hoisting or deleting the
/// computation that produced `value`; it does NOT let the compiler assume
/// the value changed type or content.
template <typename T>
inline void DoNotOptimize(const T& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

/// Mean L1 error of `trials` noisy releases of `truth` with i.i.d.
/// Laplace(scale) noise per coordinate (the quantity every utility table in
/// the paper reports).
inline double MeanL1Error(const Vector& truth, double scale, int trials,
                          Rng* rng) {
  double total = 0.0;
  for (int t = 0; t < trials; ++t) {
    double err = 0.0;
    for (std::size_t j = 0; j < truth.size(); ++j) {
      err += std::abs(rng->Laplace(scale));
    }
    total += err;
  }
  return total / trials;
}

/// Mean absolute error of a scalar release with Laplace(scale) noise.
inline double MeanAbsError(double scale, int trials, Rng* rng) {
  double total = 0.0;
  for (int t = 0; t < trials; ++t) total += std::abs(rng->Laplace(scale));
  return total / trials;
}

/// Prints one row of a paper-style table to stdout (the benchmark console
/// reporter covers the counters; these rows give the exact paper layout).
inline void PrintRow(const std::string& label, const std::vector<double>& cells) {
  std::printf("%-28s", label.c_str());
  for (double c : cells) std::printf("  %12.6g", c);
  std::printf("\n");
}

inline void PrintHeader(const std::string& title,
                        const std::vector<std::string>& cols) {
  std::printf("\n== %s ==\n%-28s", title.c_str(), "");
  for (const std::string& c : cols) std::printf("  %12s", c.c_str());
  std::printf("\n");
}

}  // namespace bench
}  // namespace pf

#endif  // PUFFERFISH_BENCH_BENCH_UTIL_H_
