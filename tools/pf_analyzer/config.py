"""Analyzer configuration: which code each pass holds to which contract.

Kept as data (not flags) so the invariants' scope is reviewable in one
place; the CLI can extend pinned files and widen scope for fixtures.
"""

from dataclasses import dataclass, field
from typing import List, Set


def _default_pinned() -> List[str]:
    # The bit-exact-pinned surfaces: exact MQM scoring, elimination, the
    # matrix/factor kernels. Paths are substring-matched.
    return [
        "pufferfish/mqm_exact",
        "pufferfish/markov_quilt_mechanism",
        "graphical/elimination",
        "graphical/factor",
        "common/matrix",
        "common/eigen",
        "common/record_batch",
        "engine/batch_kernels",
    ]


@dataclass
class AnalyzerConfig:
    # budget-flow applies to the serving classes that touch the ledger.
    budget_classes: Set[str] = field(
        default_factory=lambda: {"Session", "PrivacyEngine"})
    # determinism applies to files matching these substrings.
    pinned_files: List[str] = field(default_factory=_default_pinned)
    # no-throw signature discipline applies to public APIs in these layers.
    status_api_files: List[str] = field(
        default_factory=lambda: ["src/engine/", "src/pufferfish/"])
    # Fixture mode: every file is in scope for every class-scoped pass.
    all_files_in_scope: bool = False
    # When set, the lock-order pass writes the generated doc here.
    lock_order_doc: str = ""
