"""A small C++ tokenizer for the builtin (non-libclang) frontend.

Produces (kind, text, line) tokens with comments and literals collapsed:
string/char literals become a single 'str' token (their contents never
matter to the passes), comments disappear entirely — but `pf:allow(...)`
and legacy `lint:allow(...)` markers inside comments are collected per
line, since they are the analyzer's suppression mechanism.
"""

import re
from typing import Dict, List, Set, Tuple

ALLOW_RE = re.compile(r"(?:pf|lint):allow\(([a-z0-9_-]+)\)")

# Token kinds: 'id', 'num', 'str', 'punct'.
Token = Tuple[str, str, int]

_ID_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
_ID_CONT = _ID_START | set("0123456789")
_DIGITS = set("0123456789")

# Multi-char operators that matter for token-level pattern matching.
_PUNCT3 = ("->*", "<<=", ">>=", "...", "<=>")
_PUNCT2 = (
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&",
    "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
)


def tokenize(text: str):
    """Returns (tokens, allows) where allows maps line -> set of rule names
    exempted on that line via pf:allow/lint:allow markers."""
    tokens: List[Token] = []
    allows: Dict[int, Set[str]] = {}
    i, n, line = 0, len(text), 1

    def note_allows(chunk: str, at_line: int):
        for m in ALLOW_RE.finditer(chunk):
            allows.setdefault(at_line, set()).add(m.group(1))

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        # Comments (collect allow markers, then skip).
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j < 0:
                j = n
            note_allows(text[i:j], line)
            i = j
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            if j < 0:
                j = n
            else:
                j += 2
            chunk = text[i:j]
            # Markers inside a block comment apply to the line they sit on.
            at = line
            for part in chunk.split("\n"):
                note_allows(part, at)
                at += 1
            line += chunk.count("\n")
            i = j
            continue
        # Raw strings: R"delim( ... )delim".
        if c == "R" and text[i : i + 2] == 'R"':
            m = re.match(r'R"([^()\\ ]{0,16})\(', text[i:])
            if m:
                close = ")" + m.group(1) + '"'
                j = text.find(close, i + m.end())
                if j < 0:
                    j = n
                else:
                    j += len(close)
                line += text.count("\n", i, j)
                tokens.append(("str", '""', line))
                i = j
                continue
        # String / char literals.
        if c == '"' or c == "'":
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == c:
                    j += 1
                    break
                if text[j] == "\n":  # Unterminated; bail at EOL.
                    break
                j += 1
            tokens.append(("str", '""' if c == '"' else "''", line))
            i = j
            continue
        # Preprocessor lines: keep as one 'pp' token (continuations folded).
        if c == "#" and (not tokens or tokens[-1][2] != line):
            j = i
            while j < n:
                k = text.find("\n", j)
                if k < 0:
                    k = n
                if text[k - 1 : k] == "\\" and k < n:
                    j = k + 1
                    line += 1
                    continue
                j = k
                break
            tokens.append(("pp", text[i:j], line))
            line += text.count("\n", i, j)
            i = j
            continue
        if c in _ID_START:
            j = i + 1
            while j < n and text[j] in _ID_CONT:
                j += 1
            tokens.append(("id", text[i:j], line))
            i = j
            continue
        if c in _DIGITS or (c == "." and i + 1 < n and text[i + 1] in _DIGITS):
            j = i + 1
            while j < n and (text[j] in _ID_CONT or text[j] in ".'+-"):
                # The +- only continues an exponent (1e-5); otherwise stop.
                if text[j] in "+-" and text[j - 1] not in "eEpP":
                    break
                j += 1
            tokens.append(("num", text[i:j], line))
            i = j
            continue
        matched = False
        for group in (_PUNCT3, _PUNCT2):
            for p in group:
                if text.startswith(p, i):
                    tokens.append(("punct", p, line))
                    i += len(p)
                    matched = True
                    break
            if matched:
                break
        if matched:
            continue
        tokens.append(("punct", c, line))
        i += 1

    return tokens, allows
