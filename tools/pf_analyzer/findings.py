"""Finding representation, pf:allow suppression, and the findings baseline.

One findings format serves every rule — semantic passes and the folded
text rules alike — so CI, the baseline, and humans all read one shape:

    src/engine/session.cc:207: [budget-flow] <message>
        invariant: <why the rule exists>

Suppression: an inline `// pf:allow(<rule>): <why>` marker on the
finding's line (or the line directly above, for markers that need a full
comment line) exempts that line from <rule>. The legacy `lint:allow`
spelling is accepted for compatibility with pre-analyzer annotations.

Baseline: a checked-in JSON list of finding fingerprints that are known
and justified. Fingerprints hash (rule, file, function, normalized
snippet) — NOT the line number — so unrelated edits above a baselined
finding do not invalidate it, while any change to the flagged code does.
"""

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Set


@dataclass
class Finding:
    rule: str
    file: str
    line: int
    message: str
    why: str = ""  # The invariant the rule enforces (rule-level).
    function: str = ""  # Qualified function, when the pass knows it.
    snippet: str = ""  # Normalized source fragment for fingerprinting.

    def fingerprint(self) -> str:
        basis = "|".join(
            (self.rule, self.file, self.function,
             " ".join(self.snippet.split())))
        return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]

    def format(self, show_fingerprint: bool = False) -> str:
        head = f"{self.file}:{self.line}: [{self.rule}] {self.message}"
        lines = [head]
        if self.why:
            lines.append(f"    invariant: {self.why}")
        if show_fingerprint:
            lines.append(f"    fingerprint: {self.fingerprint()}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "file": self.file,
            "line": self.line,
            "function": self.function,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }


# Marker names that also suppress a semantic rule at the same site: the
# folded text rules keep their historical names, and a site annotated for
# the narrow text rule is by the same argument exempt from the broader
# semantic rule (e.g. `pf:allow(value-or-die)` on a checked ValueOrDie
# also answers the no-throw pass).
RULE_ALIASES: Dict[str, Set[str]] = {
    "no-throw": {"value-or-die", "naked-new-delete", "no-abort"},
    "determinism": {"unseeded-randomness", "fast-math-fma"},
}


def is_allowed(finding: Finding, allows: Dict[str, Dict[int, Set[str]]]) -> bool:
    """True when an inline pf:allow/lint:allow marker exempts the finding
    (same line, or the line directly above for standalone comment lines)."""
    per_file = allows.get(finding.file, {})
    accepted = {finding.rule} | RULE_ALIASES.get(finding.rule, set())
    for line in (finding.line, finding.line - 1):
        if accepted & per_file.get(line, set()):
            return True
    return False


class Baseline:
    """The checked-in set of known, justified findings."""

    def __init__(self, entries: List[dict]):
        self.entries = entries
        self._by_fp = {e["fingerprint"]: e for e in entries}

    @classmethod
    def load(cls, path: str) -> "Baseline":
        if not os.path.isfile(path):
            return cls([])
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
        return cls(data.get("findings", []))

    def contains(self, finding: Finding) -> bool:
        return finding.fingerprint() in self._by_fp

    @staticmethod
    def write(path: str, findings: List[Finding], note: str = "") -> None:
        data = {
            "comment": note or (
                "pf_analyzer findings baseline: each entry is a known, "
                "justified finding. Prefer fixing or an inline pf:allow "
                "marker; baseline only what needs neither."),
            "findings": sorted(
                (f.to_json() for f in findings),
                key=lambda e: (e["rule"], e["file"], e["fingerprint"])),
        }
        with open(path, "w", encoding="utf-8") as f:
            json.dump(data, f, indent=2)
            f.write("\n")
