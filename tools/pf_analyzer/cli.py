"""pf_analyzer command line.

    python3 tools/pf_analyzer [FILE...]             # default: src/ + CMakeLists.txt
    python3 tools/pf_analyzer --compdb build/compile_commands.json
    python3 tools/pf_analyzer --regex-only          # text rules only (no parse)
    python3 tools/pf_analyzer --list-rules
    python3 tools/pf_analyzer --update-baseline     # re-justify current findings

Exit status: 0 clean, 1 findings, 2 usage/internal error.

Findings are filtered in order: inline `pf:allow(<rule>): why` markers
(and legacy `lint:allow`), then the checked-in baseline
(tools/pf_analyzer/baseline.json). What survives is an error.
"""

import argparse
import os
import sys

from . import clang_frontend, compdb, syntax_frontend
from .config import AnalyzerConfig
from .findings import Baseline, is_allowed
from .ir import SourceModel
from .lexer import ALLOW_RE
from .passes import REGISTRY, rule_names

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "baseline.json")


def build_model(files, file_args, args, root):
    """Parses every file with the syntax frontend, then (unless disabled)
    upgrades bodies with libclang where it loads and parses."""
    model = SourceModel()
    relpaths = []
    for f in files:
        abspath = f if os.path.isabs(f) else os.path.join(root, f)
        rel = os.path.relpath(os.path.abspath(abspath), root).replace(os.sep, "/")
        if not os.path.isfile(abspath):
            continue  # Changed-files mode may name deleted files.
        with open(abspath, "r", encoding="utf-8", errors="replace") as fh:
            text = fh.read()
        model.file_text[rel] = text
        relpaths.append(rel)
        # Allow markers are collected for every file regardless of mode, so
        # --regex-only honors the same pf:allow / lint:allow suppressions.
        for lineno, line in enumerate(text.splitlines(), start=1):
            for m in ALLOW_RE.finditer(line):
                model.allows.setdefault(rel, {}).setdefault(
                    lineno, set()).add(m.group(1))
        if args.regex_only or not rel.endswith(compdb.CXX_EXTENSIONS):
            continue
        syntax_frontend.parse_file(rel, text, model)
        model.frontend[rel] = "syntax"
    if not args.regex_only and not args.syntax_only and clang_frontend.available():
        for rel in relpaths:
            if not rel.endswith(compdb.CXX_EXTENSIONS):
                continue
            flags = file_args.get(rel, [])
            clang_frontend.parse_file(
                rel, os.path.join(root, rel), flags, model, root)
    return model


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="pf_analyzer", description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*",
                        help="files to analyze (default: src/ + CMakeLists.txt)")
    parser.add_argument("--compdb", metavar="PATH",
                        help="compile_commands.json; file list + clang flags")
    parser.add_argument("--regex-only", action="store_true",
                        help="run only the text rules (no C++ parse at all)")
    parser.add_argument("--syntax-only", action="store_true",
                        help="use the builtin frontend even if libclang loads")
    parser.add_argument("--rules", metavar="R1,R2",
                        help="comma-separated rule subset")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--baseline", metavar="PATH", default=DEFAULT_BASELINE)
    parser.add_argument("--update-baseline", action="store_true",
                        help="write current findings to the baseline and exit 0")
    parser.add_argument("--lock-order-doc", metavar="PATH",
                        help="write the generated lock-order doc here")
    parser.add_argument("--pin-files", metavar="FRAG1,FRAG2",
                        help="extra path fragments pinned for determinism")
    parser.add_argument("--all-files-in-scope", action="store_true",
                        help="fixture mode: ignore class/path scoping")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as JSON")
    parser.add_argument("--fingerprints", action="store_true",
                        help="show each finding's baseline fingerprint")
    args = parser.parse_args(argv)

    if args.list_rules:
        for name in sorted(REGISTRY):
            runner, why, semantic = REGISTRY[name]
            kind = "semantic" if semantic else "text"
            print(f"{name} ({kind}): {why}")
        return 0

    selected = sorted(REGISTRY)
    if args.rules:
        selected = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in selected if r not in REGISTRY]
        if unknown:
            print(f"error: unknown rule(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
    if args.regex_only:
        semantic_dropped = [r for r in selected if REGISTRY[r][2]]
        selected = [r for r in selected if not REGISTRY[r][2]]
        if semantic_dropped and args.rules:
            print(f"note: --regex-only skips semantic rule(s): "
                  f"{', '.join(semantic_dropped)}", file=sys.stderr)

    config = AnalyzerConfig()
    if args.pin_files:
        config.pinned_files.extend(
            p.strip() for p in args.pin_files.split(",") if p.strip())
    config.all_files_in_scope = args.all_files_in_scope
    if args.lock_order_doc:
        config.lock_order_doc = args.lock_order_doc

    file_args = {}
    if args.compdb:
        try:
            files, file_args = compdb.load_compdb(args.compdb, REPO_ROOT)
        except (OSError, ValueError, KeyError) as e:
            print(f"error: cannot load compdb {args.compdb}: {e}",
                  file=sys.stderr)
            return 2
    elif args.files:
        files = args.files
    else:
        files = compdb.default_targets(REPO_ROOT)

    try:
        model = build_model(files, file_args, args, REPO_ROOT)
    except Exception as e:
        print(f"error: analysis failed: {e}", file=sys.stderr)
        return 2

    findings = []
    for name in selected:
        runner, _, _ = REGISTRY[name]
        findings.extend(runner(model, config))

    findings = [f for f in findings if not is_allowed(f, model.allows)]
    findings.sort(key=lambda f: (f.file, f.line, f.rule, f.fingerprint()))

    if args.update_baseline:
        Baseline.write(args.baseline, findings)
        print(f"pf_analyzer: baseline updated with {len(findings)} "
              f"finding(s) -> {args.baseline}")
        return 0

    baseline = Baseline.load(args.baseline)
    new = [f for f in findings if not baseline.contains(f)]

    if args.json:
        import json
        print(json.dumps([f.to_json() for f in new], indent=2))
        return 1 if new else 0

    frontends = sorted(set(model.frontend.values()))
    mode = ("regex" if args.regex_only else "+".join(frontends) or "regex")
    if new:
        print(f"pf_analyzer: {len(new)} finding(s) "
              f"({len(findings) - len(new)} baselined, frontend: {mode})\n")
        for f in new:
            print(f.format(show_fingerprint=args.fingerprints))
        print(
            "\nFix it, or suppress deliberately:\n"
            "  inline:   ... // pf:allow(<rule>): <why this is sound>\n"
            "  baseline: python3 tools/pf_analyzer --update-baseline "
            "(justify in review)")
        return 1
    print(f"pf_analyzer: clean ({len(model.file_text)} file(s), "
          f"{len(selected)} rule(s), frontend: {mode}, "
          f"{len(findings)} baselined)")
    return 0
