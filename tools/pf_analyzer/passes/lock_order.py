"""lock-order: the global mutex acquisition graph must be acyclic.

The engine documents pairwise orders in comments (PrivacyEngine:
`model_mutex_ before compiled_mutex_`), but comments drift. This pass
derives the real order from the code:

  * Nodes are mutex members: every field whose type is a mutex capability
    (`pf::Mutex`, `Mutex`), named `Class::field`.
  * Acquisition sites are `MutexLock guard(m)` declarations (held to the
    end of the enclosing block), explicit `m.Lock()` / `m.Unlock()` pairs,
    and locks a function declares it runs under via `PF_REQUIRES(m)`.
  * An edge A -> B is recorded when B is acquired while A is held — either
    directly in one function, or through a call: if f holds A and calls g,
    every lock g (transitively) acquires is nested under A. Callee
    summaries are computed to a fixpoint over a name-resolved call graph;
    calls whose name matches several methods are skipped rather than
    over-approximated.
  * A cycle in the edge set is a potential deadlock: two threads taking
    the cycle from different entry points can each hold the lock the other
    wants. Each cycle yields one finding.

The derived graph is also emitted as `docs/LOCK_ORDER.md` (via
`--lock-order-doc`), giving the repo a generated, checked-in lock-order
reference that CI keeps fresh.
"""

from typing import Dict, List, Optional, Set, Tuple

from ..findings import Finding
from ..ir import Call, Function, SourceModel, Stmt

WHY = ("the mutex acquisition graph must stay acyclic — a cycle means two "
       "threads can deadlock by taking the cycle from different entries")

# Capability wrapper classes themselves are the primitives, not users.
_PRIMITIVE_CLASSES = {"Mutex", "MutexLock", "CondVar"}

_MUTEX_TYPE_WORDS = ("Mutex",)


def _is_mutex_field(type_text: str) -> bool:
    if "MutexLock" in type_text:
        return False
    return any(w in type_text for w in _MUTEX_TYPE_WORDS)


class LockGraph:
    """Nodes are 'Class::field' mutex names; edges carry witness sites."""

    def __init__(self):
        self.nodes: Set[str] = set()
        # (held, acquired) -> list of "file:line via Function" witnesses.
        self.edges: Dict[Tuple[str, str], List[str]] = {}

    def add_edge(self, held: str, acquired: str, site: str):
        if held == acquired:
            return  # Self-nesting is a recursive-lock bug, reported apart.
        self.nodes.add(held)
        self.nodes.add(acquired)
        self.edges.setdefault((held, acquired), [])
        if site not in self.edges[(held, acquired)]:
            self.edges[(held, acquired)].append(site)

    def successors(self, node: str) -> List[str]:
        return sorted(b for (a, b) in self.edges if a == node)

    def find_cycles(self) -> List[List[str]]:
        """Returns each elementary cycle once (rotated to min node first)."""
        cycles: Set[Tuple[str, ...]] = set()
        for start in sorted(self.nodes):
            stack = [(start, [start])]
            while stack:
                node, path = stack.pop()
                for nxt in self.successors(node):
                    if nxt == start:
                        i = path.index(min(path))
                        cycles.add(tuple(path[i:] + path[:i]))
                    elif nxt not in path and len(path) < 8:
                        stack.append((nxt, path + [nxt]))
        return [list(c) for c in sorted(cycles)]


def _resolve_lock(expr: str, fn: Function, model: SourceModel) -> Optional[str]:
    """Maps a lock expression ('mutex_', 'entry->mutex', '*mu') to its
    canonical 'Class::field' node name, or None when unresolvable."""
    expr = expr.strip().lstrip("*&")
    import re
    parts = re.split(r"->|\.", expr)
    leaf = parts[-1].strip()
    if not re.fullmatch(r"[A-Za-z_]\w*", leaf):
        return None
    f = model.find_field(leaf, fn.cls if len(parts) == 1 else "")
    if f is None or not _is_mutex_field(f.type_text):
        return None
    if f.cls in _PRIMITIVE_CLASSES:
        return None
    return f"{f.cls}::{f.name}" if f.cls else f.name


def _entry_locks(fn: Function, model: SourceModel) -> Set[str]:
    """Locks a function runs under per PF_REQUIRES on definition or decl."""
    reqs = list(fn.requires)
    for md in model.method_decls:
        if md.cls == fn.cls and md.name == fn.name:
            reqs.extend(md.requires)
    out = set()
    for r in reqs:
        node = _resolve_lock(r, fn, model)
        if node:
            out.add(node)
    return out


def _scan_function(fn: Function, model: SourceModel, graph: LockGraph,
                   callee_summary: Dict[str, Set[str]],
                   call_index: Dict[str, List[str]],
                   findings: List[Finding]) -> Set[str]:
    """Walks fn recording nesting edges. Returns every lock fn itself
    acquires (for the interprocedural summary)."""
    acquired_anywhere: Set[str] = set()
    entry = _entry_locks(fn, model)

    def site(line: int) -> str:
        return f"{fn.file}:{line} via {fn.qualified}"

    def walk(stmts: List[Stmt], held: Set[str]):
        held = set(held)
        for s in stmts:
            new_locks: List[str] = []
            for d in s.decls:
                if "MutexLock" in d.type_text:
                    node = _resolve_lock(d.init_text, fn, model)
                    if node:
                        new_locks.append((node, d.line))
            for c in s.calls:
                if c.name == "Lock" and c.receiver:
                    node = _resolve_lock(c.receiver, fn, model)
                    if node:
                        new_locks.append((node, c.line))
                elif c.name == "Unlock" and c.receiver:
                    node = _resolve_lock(c.receiver, fn, model)
                    if node:
                        held.discard(node)
            for node, line in new_locks:
                if node in held:
                    findings.append(Finding(
                        rule="lock-order", file=fn.file, line=line,
                        message=(f"`{node}` re-acquired in {fn.qualified} "
                                 f"while already held — pf::Mutex is not "
                                 f"recursive"),
                        why=WHY, function=fn.qualified,
                        snippet=f"relock {node} in {fn.qualified}"))
                    continue
                for h in held:
                    graph.add_edge(h, node, site(line))
                held.add(node)
                acquired_anywhere.add(node)
            # Calls made while holding locks: nest the callee's summary.
            if held:
                for c in s.calls:
                    if c.name in ("Lock", "Unlock", "TryLock"):
                        continue
                    targets = call_index.get(c.name, [])
                    if len(targets) != 1:
                        continue  # Ambiguous or unknown callee: skip.
                    for inner in callee_summary.get(targets[0], set()):
                        for h in held:
                            graph.add_edge(h, inner, site(c.line))
            walk(s.body, held)
            walk(s.orelse, held)

    walk(fn.body, entry)
    return acquired_anywhere


def build_graph(model: SourceModel, findings: List[Finding]) -> LockGraph:
    graph = LockGraph()
    # Seed the node set with every known mutex field so the doc lists
    # leaf mutexes that never nest.
    for f in model.fields:
        if _is_mutex_field(f.type_text) and f.cls not in _PRIMITIVE_CLASSES:
            name = f"{f.cls}::{f.name}" if f.cls else f.name
            graph.nodes.add(name)

    # Name-resolved call index: callee name -> qualified functions.
    call_index: Dict[str, List[str]] = {}
    for fn in model.functions:
        call_index.setdefault(fn.name, [])
        if fn.qualified not in call_index[fn.name]:
            call_index[fn.name].append(fn.qualified)

    # Fixpoint on transitive acquired-lock summaries.
    summary: Dict[str, Set[str]] = {fn.qualified: set() for fn in model.functions}
    direct: Dict[str, Set[str]] = {}
    scratch: List[Finding] = []
    for fn in model.functions:
        if fn.cls in _PRIMITIVE_CLASSES:
            direct[fn.qualified] = set()
            continue
        direct[fn.qualified] = _scan_function(
            fn, model, LockGraph(), {}, {}, scratch)
    changed = True
    while changed:
        changed = False
        for fn in model.functions:
            acc = set(direct.get(fn.qualified, set()))
            for s in (walk for st in fn.body for walk in _stmts(st)):
                for c in s.calls:
                    targets = call_index.get(c.name, [])
                    if len(targets) == 1:
                        acc |= summary.get(targets[0], set())
            if acc - summary[fn.qualified]:
                summary[fn.qualified] |= acc
                changed = True

    # Real pass: record edges, now with callee summaries available.
    for fn in model.functions:
        if fn.cls in _PRIMITIVE_CLASSES:
            continue
        _scan_function(fn, model, graph, summary, call_index, findings)
    return graph


def _stmts(stmt: Stmt):
    yield stmt
    for b in stmt.body:
        yield from _stmts(b)
    for b in stmt.orelse:
        yield from _stmts(b)


def run(model: SourceModel, config) -> List[Finding]:
    findings: List[Finding] = []
    graph = build_graph(model, findings)
    for cycle in graph.find_cycles():
        arrows = " -> ".join(cycle + [cycle[0]])
        witness_bits = []
        for a, b in zip(cycle, cycle[1:] + [cycle[0]]):
            sites = graph.edges.get((a, b), [])
            if sites:
                witness_bits.append(f"{a} -> {b} at {sites[0]}")
        anchor = graph.edges.get((cycle[0], cycle[1 % len(cycle)]), [""])
        line = 0
        file = ""
        if anchor and anchor[0]:
            loc = anchor[0].split(" via ")[0]
            file, _, ln = loc.rpartition(":")
            line = int(ln) if ln.isdigit() else 0
        findings.append(Finding(
            rule="lock-order", file=file or "(graph)", line=line,
            message=(f"lock acquisition cycle {arrows} "
                     f"({'; '.join(witness_bits)}) — a consistent global "
                     f"order must be chosen and enforced"),
            why=WHY, snippet=f"cycle {arrows}"))
    if config.lock_order_doc:
        write_doc(config.lock_order_doc, graph, model)
    return findings


def _topo_order(graph: LockGraph) -> List[str]:
    """Kahn's algorithm; on a cycle, remaining nodes append sorted."""
    indeg = {n: 0 for n in graph.nodes}
    for (_, b) in graph.edges:
        indeg[b] = indeg.get(b, 0) + 1
    ready = sorted(n for n, d in indeg.items() if d == 0)
    order: List[str] = []
    while ready:
        n = ready.pop(0)
        order.append(n)
        for m in graph.successors(n):
            indeg[m] -= 1
            if indeg[m] == 0:
                ready.append(m)
        ready.sort()
    order.extend(sorted(n for n in graph.nodes if n not in order))
    return order


def write_doc(path: str, graph: LockGraph, model: SourceModel) -> None:
    lines = [
        "# Lock order",
        "",
        "<!-- Generated by tools/pf_analyzer (lock-order pass). Do not edit",
        "     by hand: regenerate with",
        "     `python3 tools/pf_analyzer --rules lock-order "
        "--lock-order-doc docs/LOCK_ORDER.md src`. -->",
        "",
        "Derived from `MutexLock` sites, explicit `Lock()/Unlock()` calls,",
        "and `PF_REQUIRES` annotations across the tree. An edge `A -> B`",
        "means B is acquired while A is held; the graph must stay acyclic.",
        "",
        "## Global acquisition order",
        "",
    ]
    for i, n in enumerate(_topo_order(graph), 1):
        lines.append(f"{i}. `{n}`")
    lines += ["", "## Nesting edges", ""]
    if graph.edges:
        lines.append("| held | acquired | witness |")
        lines.append("|---|---|---|")
        for (a, b) in sorted(graph.edges):
            w = graph.edges[(a, b)][0]
            lines.append(f"| `{a}` | `{b}` | {w} |")
    else:
        lines.append("(no nested acquisitions found)")
    lines += ["", "## Mutexes and what they guard", ""]
    lines.append("| mutex | guarded state |")
    lines.append("|---|---|")
    by_mutex: Dict[str, List[str]] = {}
    for f in model.fields:
        if not f.guarded_by:
            continue
        holder = model.find_field(f.guarded_by.strip().lstrip("*&"), f.cls)
        if holder is None:
            continue
        key = f"{holder.cls}::{holder.name}" if holder.cls else holder.name
        by_mutex.setdefault(key, []).append(f"`{f.name}`")
    for n in _topo_order(graph):
        guarded = ", ".join(sorted(by_mutex.get(n, []))) or "—"
        lines.append(f"| `{n}` | {guarded} |")
    for n in sorted(by_mutex):
        if n not in graph.nodes:
            guarded = ", ".join(sorted(by_mutex[n]))
            lines.append(f"| `{n}` | {guarded} |")
    with open(path, "w", encoding="utf-8") as f:
        f.write("\n".join(lines) + "\n")
