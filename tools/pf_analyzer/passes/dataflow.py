"""Path-sensitive fact propagation over the Stmt tree.

The engine computes, at every statement, the set of string facts that are
established on EVERY path from function entry to that statement — i.e.
dominance in the sense the budget-flow and no-throw passes need ("a charge
call dominates this release site", "an .ok() check dominates this
ValueOrDie"). Join is set intersection over non-terminating branches; a
branch that always returns does not constrain the join (the usual
`if (!ok) return st;` early-exit shape keeps its facts).

Loop and switch bodies may execute zero times, so facts established inside
them do not escape; facts from an if/loop HEAD (the condition is evaluated
on every path that reaches and leaves the statement) do.
"""

from typing import Callable, Set

from ..ir import Stmt


def scan(stmts, facts: Set[str], fact_fn: Callable[[Stmt], Set[str]],
         visit: Callable[[Stmt, Set[str]], None]):
    """Walks `stmts` with starting `facts`.

    fact_fn(stmt) -> facts the statement itself establishes (from its own
    calls/decls — head calls for if/loop/switch, everything for simple).
    visit(stmt, pre_facts) is called on every statement with the facts
    established strictly before it.

    Returns (facts_after, terminated).
    """
    facts = set(facts)
    for s in stmts:
        visit(s, facts)
        facts |= fact_fn(s)
        if s.kind == "return":
            return facts, True
        if s.kind in ("break", "continue", "goto"):
            return facts, True
        if s.kind == "block":
            facts, term = scan(s.body, facts, fact_fn, visit)
            if term:
                return facts, True
        elif s.kind == "if":
            f_then, t_then = scan(s.body, facts, fact_fn, visit)
            f_else, t_else = scan(s.orelse, facts, fact_fn, visit)
            if t_then and t_else:
                return facts | (f_then & f_else), True
            if t_then:
                facts = f_else
            elif t_else:
                facts = f_then
            else:
                facts = f_then & f_else
        elif s.kind in ("loop", "switch"):
            scan(s.body, facts, fact_fn, visit)  # Body facts do not escape.
    return facts, False
