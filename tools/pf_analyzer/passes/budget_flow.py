"""budget-flow: every release is dominated by a Theorem 4.4 budget charge,
and admission (permit acquisition) precedes the charge.

The serving contract (PR 2 pricing, PR 8 shed-before-charge ordering):

  1. On every path through Session/PrivacyEngine that reaches a release
     site — a noise release (`ReleaseVector`), the shared task body
     (`Execute`), or an executor enqueue (`executor().Submit`) — a budget
     charge (`ChargeLocked` / `ChargeBatchLocked` / `RecordRelease*` /
     `RecordBatchStrict` / `ComposedBudgetAdmits`)
     must already have happened. An uncharged path is a privacy bug: noise
     goes out without the ledger recording it.

  2. In any function that acquires admission permits (`TryAcquire`,
     `AdmitInFlight`), every charge must be dominated by a permit
     acquisition: shedding happens BEFORE the ledger is touched, so a shed
     request never debits epsilon.

Escape: `// pf:allow(budget-flow): <why>` on the site, for release sites
whose charge is structurally upstream (e.g. a task body that only runs
with an already-charged ticket).
"""

from typing import List, Set

from ..findings import Finding
from ..ir import Function, SourceModel, Stmt
from . import dataflow

WHY = ("every release must be dominated by a Theorem 4.4 budget charge, "
       "and permit acquisition must precede the charge (shed-before-charge)")

RELEASE_CALLS = {"Execute", "ReleaseVector"}
ENQUEUE_CALL = "Submit"  # Only on a receiver mentioning the executor.
CHARGE_CALLS = {"ChargeLocked", "ChargeBatchLocked", "RecordRelease",
                "RecordReleaseStrict", "RecordBatchStrict",
                "ComposedBudgetAdmits"}
PERMIT_CALLS = {"TryAcquire", "AdmitInFlight"}


def _is_release_call(call) -> bool:
    if call.name in RELEASE_CALLS:
        return True
    return call.name == ENQUEUE_CALL and "executor" in call.receiver


def _facts(stmt: Stmt) -> Set[str]:
    out = set()
    for c in stmt.calls:
        if c.name in CHARGE_CALLS:
            out.add("charge")
        if c.name in PERMIT_CALLS:
            out.add("permit")
    return out


def _check_function(fn: Function, findings: List[Finding]):
    has_permit = any(
        c.name in PERMIT_CALLS
        for s in _all_stmts(fn.body) for c in s.calls)

    def visit(stmt: Stmt, facts: Set[str]):
        for c in stmt.calls:
            if _is_release_call(c) and "charge" not in facts:
                # The charge-call definitions themselves are not release
                # paths, and a release in the same statement as its charge
                # is ordered by the expression, which we cannot see — only
                # flag cross-statement violations.
                if any(cc.name in CHARGE_CALLS for cc in stmt.calls):
                    continue
                findings.append(Finding(
                    rule="budget-flow", file=fn.file, line=c.line,
                    message=(f"release/enqueue site `{c.qualified}(...)` in "
                             f"{fn.qualified} is not dominated by a budget "
                             f"charge ({'/'.join(sorted(CHARGE_CALLS))})"),
                    why=WHY, function=fn.qualified,
                    snippet=f"release {c.qualified} in {fn.qualified}"))
            if has_permit and c.name in CHARGE_CALLS and "permit" not in facts:
                findings.append(Finding(
                    rule="budget-flow", file=fn.file, line=c.line,
                    message=(f"budget charge `{c.qualified}(...)` in "
                             f"{fn.qualified} precedes admission — a permit "
                             f"({'/'.join(sorted(PERMIT_CALLS))}) must be "
                             f"acquired before the charge so shed requests "
                             f"never debit epsilon"),
                    why=WHY, function=fn.qualified,
                    snippet=f"charge-before-permit {c.qualified} in {fn.qualified}"))

    dataflow.scan(fn.body, set(), _facts, visit)


def _all_stmts(stmts):
    from ..ir import walk_stmts
    return list(walk_stmts(stmts))


def run(model: SourceModel, config) -> List[Finding]:
    findings: List[Finding] = []
    for fn in model.functions:
        in_scope = (fn.cls in config.budget_classes or
                    config.all_files_in_scope)
        if not in_scope:
            continue
        # The charge implementation itself prices-and-records; it contains
        # the charge calls but is not a release path.
        _check_function(fn, findings)
    return findings
