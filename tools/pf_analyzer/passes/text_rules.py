"""The six text rules folded in from tools/lint_invariants.py.

These are line-regex rules over comment/string-stripped source — the
pre-analyzer invariants that need no parse (and must keep working on hosts
with no libclang, via `--regex-only`). Rule names, patterns, scoping, and
exemptions are preserved exactly so existing `lint:allow(<rule>)` markers
keep their meaning; the analyzer's pf:allow spelling is the successor.
"""

import os
import re
from typing import List

from ..findings import Finding
from ..ir import SourceModel

CXX_EXTENSIONS = (".cc", ".cpp", ".h", ".hpp")


def strip_code(line):
    """Removes string/char literals and // comments from one line."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == '"' or c == "'":
            quote = c
            out.append(" ")
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    i += 1
                    break
                i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break  # Rest of line is a comment.
        out.append(c)
        i += 1
    return "".join(out)


def code_lines(text):
    """Yields (lineno, raw_line, code_only_line) with comments/strings gone."""
    in_block_comment = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                yield lineno, raw, ""
                continue
            line = " " * (end + 2) + line[end + 2:]
            in_block_comment = False
        line = strip_code(line)
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block_comment = True
                break
            line = line[:start] + " " * (end + 2 - start) + line[end + 2:]
        yield lineno, raw, line


class TextRule:
    def __init__(self, name, pattern, applies, why):
        self.name = name
        self.pattern = re.compile(pattern)
        self.applies = applies  # predicate over repo-relative path
        self.why = why


def in_src(path):
    return path.startswith("src/") and path.endswith(CXX_EXTENSIONS)


TEXT_RULES = [
    TextRule(
        "unseeded-randomness",
        r"std::random_device|\b(?:std::)?s?rand\s*\(",
        in_src,
        "determinism: noise must come from explicitly seeded pf::Rng",
    ),
    TextRule(
        "fast-math-fma",
        r"-ffast-math|__builtin_fmaf?\b|std::fmaf?\b|_mm\d*_fn?m(?:add|sub)_|\bvfmaq?\b",
        lambda p: in_src(p) or os.path.basename(p) == "CMakeLists.txt",
        "pinned summation order: FMA contraction breaks SIMD/scalar "
        "bit-identity",
    ),
    TextRule(
        "naked-new-delete",
        r"(?<![\w.:])new\s+[A-Za-z_:(]|(?<![\w.:])delete(?:\s*\[\s*\])?\s+[A-Za-z_(*]",
        lambda p: in_src(p) and p != "src/common/arena.cc",
        "ownership goes through Arena / make_unique / make_shared",
    ),
    TextRule(
        "value-or-die",
        r"\.ValueOrDie\s*\(",
        in_src,
        "library paths reachable from user input must propagate "
        "Status/Result, not abort",
    ),
    TextRule(
        "raw-mutex",
        r"std::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|lock_guard|"
        r"unique_lock|shared_lock|scoped_lock|condition_variable(?:_any)?)\b"
        r"|#\s*include\s*<(?:mutex|shared_mutex|condition_variable)>",
        lambda p: in_src(p) and p != "src/common/thread_annotations.h",
        "locking goes through the capability-annotated pf::Mutex wrappers "
        "(common/thread_annotations.h) so -Wthread-safety sees it",
    ),
    TextRule(
        "no-abort",
        r"\b(?:std::)?(?:abort|_Exit|quick_exit)\s*\(|\b(?:std::)?exit\s*\(",
        in_src,
        "fallible serving paths return typed Status, never kill the process",
    ),
]


def run_rule(rule: TextRule, model: SourceModel, config) -> List[Finding]:
    findings: List[Finding] = []
    for relpath, text in sorted(model.file_text.items()):
        # Fixture mode widens the path scoping (but keeps the exemptions'
        # spirit: fixtures live outside src/, so only the flag admits them).
        if not rule.applies(relpath) and not (
                config.all_files_in_scope and relpath.endswith(CXX_EXTENSIONS)):
            continue
        for lineno, raw, code in code_lines(text):
            if rule.pattern.search(code):
                findings.append(Finding(
                    rule=rule.name, file=relpath, line=lineno,
                    message=raw.strip(),
                    why=rule.why,
                    snippet=raw.strip()))
    return findings


def make_runner(rule: TextRule):
    def run(model: SourceModel, config) -> List[Finding]:
        return run_rule(rule, model, config)
    return run
