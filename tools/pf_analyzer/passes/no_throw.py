"""no-throw / status-discipline: fallible APIs speak Status, not exceptions.

The library is built -fno-exceptions-style by policy (PR 4/7): every
fallible public API returns `Status` / `Result<T>`, and error paths flow
through PF_RETURN_IF_ERROR / PF_ASSIGN_OR_RETURN. This pass flags:

  * `throw` / `try` / `catch` anywhere in the tree — exceptions are not
    part of the error model and would fly through the no-except executor.
  * `.at(...)` container access — throws std::out_of_range; use find() or
    a checked helper returning Status.
  * `ValueOrDie()` not dominated by an `.ok()` check on the same object —
    dies on error paths the caller might legitimately hit. (The syntax
    frontend tracks the receiver textually; a preceding `x.ok()` check on
    every path satisfies the rule.)
  * `std::stoi`-family conversions — throw on malformed input.
  * fallible-verb heuristic: public method declarations named like
    fallible operations (Load/Save/Parse/...) whose return type is not
    Status/Result/bool/future — the signature hides the failure path.
"""

import re
from typing import List, Set

from ..findings import Finding
from ..ir import Function, SourceModel, Stmt, walk_stmts
from . import dataflow

WHY = ("fallible APIs must return Status/Result and never throw: "
       "exceptions would cross the no-except executor boundary and kill "
       "the process")

_STOI_FAMILY = {"stoi", "stol", "stoll", "stoul", "stoull", "stof", "stod",
                "stold"}
_FALLIBLE_VERB = re.compile(
    r"^(Load|Save|Parse|Append|Analyze|Compile|Extend|Validate)")
_OK_RETURN = re.compile(r"\b(?:Status\b|Result\s*<|future\s*<|bool\b)")


def _fmt_type(text: str) -> str:
    return re.sub(r"\s*(::|<|>|,)\s*", lambda m: m.group(1) + (
        " " if m.group(1) == "," else ""), " ".join(text.split()))


def _check_value_or_die(fn: Function, findings: List[Finding]):
    """Flags ValueOrDie calls whose receiver has no dominating .ok()."""

    def facts(stmt: Stmt) -> Set[str]:
        out = set()
        for c in stmt.calls:
            if c.name == "ok" and c.receiver:
                out.add(f"ok:{c.receiver}")
        # `if (!st.ok()) return;` establishes ok on the fallthrough; the
        # dataflow engine handles the branch join, we just emit the fact.
        return out

    def visit(stmt: Stmt, pre: Set[str]):
        for c in stmt.calls:
            if c.name != "ValueOrDie":
                continue
            if f"ok:{c.receiver}" in pre:
                continue
            # An .ok() check in the same statement (e.g. the enclosing if
            # condition, or `CHECK(x.ok()); x.ValueOrDie()`) also counts.
            if any(cc.name == "ok" and cc.receiver == c.receiver
                   for cc in stmt.calls):
                continue
            findings.append(Finding(
                rule="no-throw", file=fn.file, line=c.line,
                message=(f"`{c.receiver}.ValueOrDie()` in {fn.qualified} is "
                         f"not dominated by an `{c.receiver}.ok()` check — "
                         f"it aborts on error paths; branch on ok() or use "
                         f"PF_ASSIGN_OR_RETURN"),
                why=WHY, function=fn.qualified,
                snippet=f"valueordie {c.receiver} in {fn.qualified}"))

    dataflow.scan(fn.body, set(), facts, visit)


def run(model: SourceModel, config) -> List[Finding]:
    findings: List[Finding] = []
    for fn in model.functions:
        for stmt in walk_stmts(fn.body):
            for c in stmt.calls:
                # The body parser records try/catch blocks as marker calls.
                if c.name in ("try", "catch"):
                    findings.append(Finding(
                        rule="no-throw", file=fn.file, line=c.line,
                        message=(f"`{c.name}` block in {fn.qualified}: "
                                 f"exceptions are outside the error model — "
                                 f"return Status instead"),
                        why=WHY, function=fn.qualified,
                        snippet=f"{c.name} in {fn.qualified}"))
                if c.name == "at" and c.receiver:
                    findings.append(Finding(
                        rule="no-throw", file=fn.file, line=c.line,
                        message=(f"`{c.receiver}.at(...)` in {fn.qualified} "
                                 f"throws std::out_of_range on a missing "
                                 f"key — use find() and handle the miss"),
                        why=WHY, function=fn.qualified,
                        snippet=f"at {c.receiver} in {fn.qualified}"))
                if c.name in _STOI_FAMILY:
                    findings.append(Finding(
                        rule="no-throw", file=fn.file, line=c.line,
                        message=(f"`{c.qualified}(...)` in {fn.qualified} "
                                 f"throws on malformed input — use "
                                 f"std::from_chars and return Status"),
                        why=WHY, function=fn.qualified,
                        snippet=f"stoi {c.qualified} in {fn.qualified}"))
            text = stmt.text + " " + stmt.head_text
            if re.search(r"\bthrow\b", text):
                findings.append(Finding(
                    rule="no-throw", file=fn.file, line=stmt.line,
                    message=(f"`throw` in {fn.qualified}: exceptions are "
                             f"outside the error model — return Status"),
                    why=WHY, function=fn.qualified,
                    snippet=f"throw in {fn.qualified}"))
        _check_value_or_die(fn, findings)

    # Signature discipline on public declarations in the serving layers.
    for md in model.method_decls:
        if not md.is_public or not md.cls:
            continue
        if not config.all_files_in_scope and not any(
                frag in md.file for frag in config.status_api_files):
            continue
        if not _FALLIBLE_VERB.match(md.name):
            continue
        if _OK_RETURN.search(md.return_type):
            continue
        if not md.return_type.strip():
            continue  # Constructors / unparsed returns.
        findings.append(Finding(
            rule="no-throw", file=md.file, line=md.line,
            message=(f"public fallible API `{md.cls}::{md.name}` returns "
                     f"`{_fmt_type(md.return_type)}` — fallible operations "
                     f"must surface failure via Status/Result"),
            why=WHY, function=f"{md.cls}::{md.name}",
            snippet=f"fallible-sig {md.cls}::{md.name}"))
    return findings
