"""determinism: the bit-exact-pinned analysis code must be free of
nondeterminism sources.

The library's contract (PR 1/3/6) is that scoring, elimination, and the
matrix/factor kernels produce bit-identical results for any thread count,
any platform, and any run. This pass flags, in the pinned files:

  * iteration over `unordered_map`/`unordered_set` — bucket order is
    implementation- and seed-dependent, so an iteration feeding a
    reduction (sum, max, first-wins dedup) silently breaks bit-identity.
    Keyed lookups (`find`, `operator[]`, `count`) are fine.
  * unseeded randomness: `rand()`, `srand()`, `std::random_device`,
    default-constructed engines — noise must flow through pf::Rng with an
    explicit seed.
  * wall-clock reads: `time()`, `clock()`, `*_clock::now()` — scoring must
    not depend on when it runs.
  * unordered/parallel reductions: `std::reduce`, `std::transform_reduce`,
    `std::execution::*` — their summation order is unspecified.
  * explicit FMA: `std::fma`, `__builtin_fma*`, `*_fmadd_*` intrinsics —
    contraction changes the pinned mul-then-add summation order (the SIMD
    kernels use explicit mul+add so they stay bit-identical to scalar).
"""

import re
from typing import List

from ..findings import Finding
from ..ir import Function, SourceModel, Stmt, walk_stmts

WHY = ("bit-exact analysis paths must be deterministic: no hash-order "
      "iteration, unseeded RNG, clock reads, or FMA/reordered reductions")

_UNORDERED_RE = re.compile(r"unordered_(map|set|multimap|multiset)")
_WALLCLOCK_CALLS = {"time", "clock", "gettimeofday", "localtime", "gmtime"}
_RNG_CALLS = {"rand", "srand", "random_device"}
_RNG_TYPES = re.compile(
    r"\b(random_device|mt19937(_64)?|default_random_engine|minstd_rand0?)\b")
_UNORDERED_REDUCE = {"reduce", "transform_reduce"}
_FMA_RE = re.compile(r"\b(std\s*::\s*fmaf?|__builtin_fmaf?|_mm\d*_fn?m(add|sub)_\w+|vfmaq?_\w+)\b")


def _pinned(path: str, config) -> bool:
    if config.all_files_in_scope:
        return True
    return any(frag in path for frag in config.pinned_files)


def _split_params(params_text: str) -> List[str]:
    """Splits a parameter list on top-level commas (template-argument and
    parenthesized commas don't separate parameters)."""
    out, depth, cur = [], 0, []
    for ch in params_text:
        if ch in "<([":
            depth += 1
        elif ch in ">)]":
            depth -= 1
        if ch == "," and depth == 0:
            out.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    if cur:
        out.append("".join(cur))
    return out


def _resolve_type(expr: str, fn: Function, model: SourceModel) -> str:
    """Best-effort declared type of an expression like `st.index` or
    `buckets`: checks locals, then parameters, then known class fields."""
    expr = expr.strip()
    # Last member component resolves against the field table.
    parts = re.split(r"->|\.", expr)
    leaf = parts[-1].strip().split("[")[0].strip()
    root = parts[0].strip().split("[")[0].strip()
    for s in walk_stmts(fn.body):
        for d in s.decls:
            if d.name == root and len(parts) == 1:
                return d.type_text
    # Parameter types (textual: "const unordered_map<K,V>& m, int x").
    for param in _split_params(fn.params_text):
        toks = param.strip().split()
        if toks and toks[-1].lstrip("*&") == root and len(parts) == 1:
            return param
    if len(parts) > 1:
        f = model.find_field(leaf, fn.cls)
        if f is not None:
            return f.type_text
    f = model.find_field(root, fn.cls)
    if f is not None and len(parts) == 1:
        return f.type_text
    return ""


def _check_range_for(stmt: Stmt, fn: Function, model: SourceModel,
                     findings: List[Finding]):
    head = stmt.head_text
    if ":" not in head:
        return
    # Range-for: `decl : range-expr`. Skip `for (init; cond; step)` (has ;).
    if ";" in head:
        return
    range_expr = head.rsplit(":", 1)[1].strip()
    # A clang-lowered loop carries the resolved range type directly.
    resolved = ""
    for d in stmt.decls:
        if d.name == "<range>":
            resolved = d.type_text
    if not resolved:
        resolved = _resolve_type(range_expr, fn, model)
    if _UNORDERED_RE.search(resolved) or _UNORDERED_RE.search(range_expr):
        findings.append(Finding(
            rule="determinism", file=fn.file, line=stmt.line,
            message=(f"iteration over unordered container `{range_expr}` "
                     f"(type `{' '.join(resolved.split())}`) in {fn.qualified}: "
                     f"bucket order is nondeterministic — iterate a sorted "
                     f"view or keyed order instead"),
            why=WHY, function=fn.qualified,
            snippet=f"unordered-iter {range_expr} in {fn.qualified}"))


def run(model: SourceModel, config) -> List[Finding]:
    findings: List[Finding] = []
    for fn in model.functions:
        if not _pinned(fn.file, config):
            continue
        for stmt in walk_stmts(fn.body):
            if stmt.kind == "loop":
                _check_range_for(stmt, fn, model, findings)
            for c in stmt.calls:
                if c.name in _WALLCLOCK_CALLS and not c.receiver:
                    findings.append(Finding(
                        rule="determinism", file=fn.file, line=c.line,
                        message=(f"wall-clock read `{c.qualified}(...)` in "
                                 f"{fn.qualified}: pinned analysis must not "
                                 f"depend on when it runs"),
                        why=WHY, function=fn.qualified,
                        snippet=f"wallclock {c.qualified} in {fn.qualified}"))
                elif c.name == "now" and "clock" in c.qualified:
                    findings.append(Finding(
                        rule="determinism", file=fn.file, line=c.line,
                        message=(f"clock read `{c.qualified}(...)` in "
                                 f"{fn.qualified}: pinned analysis must not "
                                 f"depend on when it runs"),
                        why=WHY, function=fn.qualified,
                        snippet=f"wallclock {c.qualified} in {fn.qualified}"))
                if c.name in _RNG_CALLS:
                    findings.append(Finding(
                        rule="determinism", file=fn.file, line=c.line,
                        message=(f"unseeded randomness `{c.qualified}(...)` "
                                 f"in {fn.qualified}: draws must come from "
                                 f"an explicitly seeded pf::Rng"),
                        why=WHY, function=fn.qualified,
                        snippet=f"unseeded-rng {c.qualified} in {fn.qualified}"))
                if c.name in _UNORDERED_REDUCE and "std" in c.qualified:
                    findings.append(Finding(
                        rule="determinism", file=fn.file, line=c.line,
                        message=(f"`{c.qualified}(...)` in {fn.qualified} "
                                 f"has unspecified reduction order — use a "
                                 f"sequential loop with the pinned order"),
                        why=WHY, function=fn.qualified,
                        snippet=f"unordered-reduce {c.qualified} in {fn.qualified}"))
            for d in stmt.decls:
                if _RNG_TYPES.search(d.type_text) and not d.init_text:
                    findings.append(Finding(
                        rule="determinism", file=fn.file, line=d.line,
                        message=(f"default-constructed random engine "
                                 f"`{d.type_text} {d.name}` in {fn.qualified} "
                                 f"is unseeded"),
                        why=WHY, function=fn.qualified,
                        snippet=f"unseeded-engine {d.name} in {fn.qualified}"))
                if _RNG_TYPES.search(d.type_text) and "random_device" in d.type_text:
                    findings.append(Finding(
                        rule="determinism", file=fn.file, line=d.line,
                        message=(f"std::random_device `{d.name}` in "
                                 f"{fn.qualified}: entropy reads are "
                                 f"nondeterministic by design"),
                        why=WHY, function=fn.qualified,
                        snippet=f"random-device {d.name} in {fn.qualified}"))
            text = stmt.text + " " + stmt.head_text
            m = _FMA_RE.search(text)
            if m:
                findings.append(Finding(
                    rule="determinism", file=fn.file, line=stmt.line,
                    message=(f"FMA construct `{m.group(0)}` in {fn.qualified} "
                             f"contracts the pinned mul-then-add summation "
                             f"order"),
                    why=WHY, function=fn.qualified,
                    snippet=f"fma {m.group(0)} in {fn.qualified}"))
    return findings
