"""Rule registry: one name -> runner map for semantic passes + text rules.

Semantic passes need a parsed SourceModel (either frontend); text rules
only need file_text, so they also run under --regex-only.
"""

from . import budget_flow, determinism, lock_order, no_throw, text_rules

# name -> (runner(model, config) -> [Finding], why, semantic?)
REGISTRY = {
    "budget-flow": (budget_flow.run, budget_flow.WHY, True),
    "determinism": (determinism.run, determinism.WHY, True),
    "lock-order": (lock_order.run, lock_order.WHY, True),
    "no-throw": (no_throw.run, no_throw.WHY, True),
}

for _rule in text_rules.TEXT_RULES:
    REGISTRY[_rule.name] = (text_rules.make_runner(_rule), _rule.why, False)


def rule_names(semantic=None):
    names = []
    for name, (_, _, is_semantic) in REGISTRY.items():
        if semantic is None or is_semantic == semantic:
            names.append(name)
    return names
