import os
import sys

if __package__ in (None, ""):
    # Invoked as `python3 tools/pf_analyzer`: put tools/ on the path so the
    # package imports resolve, then re-dispatch through the package.
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    from pf_analyzer.cli import main
else:
    from .cli import main

sys.exit(main())
