"""pf_analyzer: semantic invariant checker for the pufferfish engine.

Four semantic passes (budget-flow, determinism, lock-order, no-throw)
over a frontend-neutral IR, plus the six text rules folded in from the
legacy lint_invariants.py. Two frontends lower C++ into the IR: libclang
(clang.cindex, used in CI with real compile flags) and a builtin
tokenizer/structural parser (zero dependencies, used everywhere else and
via --regex-only hosts without any parse at all).

Run as `python3 tools/pf_analyzer` — see cli.py for flags.
"""
