"""libclang frontend: lowers real clang ASTs into the shared IR.

When python `clang.cindex` plus a libclang shared library are available
(CI installs clang-14 + python3-clang; locally set PF_LIBCLANG to the
.so), this frontend re-parses each translation unit with its real compile
flags from compile_commands.json and REPLACES the syntax frontend's
function bodies with AST-accurate ones: calls are resolved through
overloads and macros, range-for loops carry the deduced range type, and
template noise disappears.

Everything else in the model — fields, method declarations, annotations,
pf:allow markers, raw text — always comes from the syntax frontend, which
runs first on every file. If libclang is missing or a file fails to
parse, that file simply keeps its syntax-frontend functions: the analyzer
degrades, never breaks.
"""

import os

_cindex = None
_load_error = ""


def _try_load():
    global _cindex, _load_error
    if _cindex is not None:
        return _cindex
    try:
        from clang import cindex
    except ImportError as e:
        _load_error = f"python clang bindings unavailable ({e})"
        return None
    lib = os.environ.get("PF_LIBCLANG", "")
    candidates = [lib] if lib else [
        "/usr/lib/llvm-14/lib/libclang-14.so.1",
        "/usr/lib/llvm-14/lib/libclang.so.1",
        "/usr/lib/x86_64-linux-gnu/libclang-14.so.1",
        "libclang.so",
    ]
    for cand in candidates:
        if not cand:
            continue
        try:
            if os.sep in cand and not os.path.exists(cand):
                continue
            cindex.Config.set_library_file(cand)
            cindex.Index.create()
            _cindex = cindex
            return _cindex
        except Exception as e:  # cindex raises LibclangError and others.
            _load_error = f"cannot load libclang ({e})"
            try:
                cindex.Config.loaded = False
                cindex.Config.library_file = None
            except Exception:
                pass
    return None


def available() -> bool:
    return _try_load() is not None


def load_error() -> str:
    return _load_error


def _text(cursor, file_lines) -> str:
    """Source text of a cursor's extent, flattened to one line."""
    try:
        ext = cursor.extent
        sl, sc = ext.start.line, ext.start.column
        el, ec = ext.end.line, ext.end.column
        if sl == el:
            return file_lines[sl - 1][sc - 1:ec - 1]
        parts = [file_lines[sl - 1][sc - 1:]]
        parts += file_lines[sl:el - 1]
        parts.append(file_lines[el - 1][:ec - 1])
        return " ".join(p.strip() for p in parts)
    except Exception:
        return ""


def _qualified(cursor) -> str:
    parts = []
    c = cursor
    while c is not None and c.spelling:
        parts.append(c.spelling)
        c = c.semantic_parent
        if c is not None and c.kind.name == "TRANSLATION_UNIT":
            break
    return "::".join(reversed(parts))


def parse_file(relpath, abspath, flags, model, repo_root):
    """Replaces `model`'s functions for relpath with clang-lowered ones.

    Returns True on success; on any failure the model is left untouched.
    """
    cindex = _try_load()
    if cindex is None:
        return False
    from .ir import Call, Decl, Function, Stmt

    K = cindex.CursorKind
    try:
        index = cindex.Index.create()
        tu = index.parse(abspath, args=list(flags) + ["-fsyntax-only"])
    except Exception:
        return False
    text = model.file_text.get(relpath, "")
    file_lines = text.splitlines()

    # Keep the syntax-frontend metadata for functions we are replacing.
    old_by_name = {}
    for fn in model.functions:
        if fn.file == relpath:
            old_by_name.setdefault(fn.name, fn)

    def lower_expr_calls(cursor, out_calls):
        try:
            if cursor.kind == K.CALL_EXPR and cursor.spelling:
                recv = ""
                children = list(cursor.get_children())
                if children and children[0].kind == K.MEMBER_REF_EXPR:
                    inner = list(children[0].get_children())
                    if inner:
                        recv = _text(inner[0], file_lines)
                qual = (recv + "." + cursor.spelling) if recv else cursor.spelling
                out_calls.append(Call(
                    name=cursor.spelling, qualified=qual, receiver=recv,
                    arg_text=_text(cursor, file_lines),
                    line=cursor.location.line))
            for ch in cursor.get_children():
                lower_expr_calls(ch, out_calls)
        except Exception:
            pass

    def lower_decls(cursor, out_decls):
        try:
            if cursor.kind == K.VAR_DECL:
                init = ""
                for ch in cursor.get_children():
                    if ch.kind.is_expression():
                        init = _text(ch, file_lines)
                out_decls.append(Decl(
                    name=cursor.spelling,
                    type_text=cursor.type.spelling,
                    init_text=init, line=cursor.location.line))
            for ch in cursor.get_children():
                lower_decls(ch, out_decls)
        except Exception:
            pass

    def lower_stmt(cursor):
        k = cursor.kind
        line = cursor.location.line
        if k == K.COMPOUND_STMT:
            return Stmt(kind="block", line=line,
                        body=[s for s in map(lower_stmt, cursor.get_children())
                              if s is not None])
        if k == K.IF_STMT:
            children = list(cursor.get_children())
            cond = children[0] if children else None
            then = children[1] if len(children) > 1 else None
            els = children[2] if len(children) > 2 else None
            head_calls = []
            if cond is not None:
                lower_expr_calls(cond, head_calls)
            s = Stmt(kind="if", line=line,
                     head_text=_text(cond, file_lines) if cond is not None else "",
                     calls=head_calls)
            if then is not None:
                low = lower_stmt(then)
                s.body = low.body if low and low.kind == "block" else ([low] if low else [])
            if els is not None:
                low = lower_stmt(els)
                s.orelse = low.body if low and low.kind == "block" else ([low] if low else [])
            return s
        if k in (K.FOR_STMT, K.WHILE_STMT, K.DO_STMT, K.CXX_FOR_RANGE_STMT):
            children = list(cursor.get_children())
            body_cursor = children[-1] if children else None
            head_calls, head_decls = [], []
            for ch in children[:-1]:
                lower_expr_calls(ch, head_calls)
                lower_decls(ch, head_decls)
            head = _text(cursor, file_lines)
            head = head.split("{", 1)[0]
            s = Stmt(kind="loop", line=line, head_text=head,
                     calls=head_calls, decls=head_decls)
            if k == K.CXX_FOR_RANGE_STMT and len(children) >= 2:
                # The range initializer's deduced type, for the
                # unordered-iteration check.
                for ch in children:
                    if ch.kind.is_expression():
                        s.decls.append(Decl(
                            name="<range>", type_text=ch.type.spelling,
                            init_text="", line=line))
                        break
            if body_cursor is not None:
                low = lower_stmt(body_cursor)
                s.body = low.body if low and low.kind == "block" else ([low] if low else [])
            return s
        if k == K.SWITCH_STMT:
            children = list(cursor.get_children())
            s = Stmt(kind="switch", line=line)
            if children:
                low = lower_stmt(children[-1])
                s.body = low.body if low and low.kind == "block" else ([low] if low else [])
            return s
        if k == K.RETURN_STMT:
            calls = []
            lower_expr_calls(cursor, calls)
            return Stmt(kind="return", line=line, calls=calls,
                        text=_text(cursor, file_lines))
        if k == K.BREAK_STMT:
            return Stmt(kind="break", line=line)
        if k == K.CONTINUE_STMT:
            return Stmt(kind="continue", line=line)
        if k == K.GOTO_STMT:
            return Stmt(kind="goto", line=line)
        if k == K.CXX_TRY_STMT:
            calls = [Call(name="try", qualified="try", receiver="",
                          arg_text="", line=line)]
            body = []
            for ch in cursor.get_children():
                low = lower_stmt(ch)
                if low is not None:
                    body.append(low)
            return Stmt(kind="block", line=line, calls=calls, body=body)
        # Everything else: a simple statement carrying calls + decls.
        calls, decls = [], []
        lower_expr_calls(cursor, calls)
        lower_decls(cursor, decls)
        return Stmt(kind="simple", line=line, calls=calls, decls=decls,
                    text=_text(cursor, file_lines))

    new_functions = []
    try:
        for cursor in tu.cursor.walk_preorder():
            if cursor.kind not in (K.FUNCTION_DECL, K.CXX_METHOD,
                                   K.CONSTRUCTOR, K.DESTRUCTOR):
                continue
            if not cursor.is_definition():
                continue
            loc_file = cursor.location.file
            if loc_file is None:
                continue
            loc_rel = os.path.relpath(
                os.path.normpath(loc_file.name), repo_root).replace(os.sep, "/")
            if loc_rel != relpath:
                continue
            body = None
            for ch in cursor.get_children():
                if ch.kind == K.COMPOUND_STMT:
                    body = ch
            if body is None:
                continue
            cls = ""
            parent = cursor.semantic_parent
            if parent is not None and parent.kind.name in (
                    "CLASS_DECL", "STRUCT_DECL", "CLASS_TEMPLATE"):
                cls = parent.spelling
            lowered = lower_stmt(body)
            old = old_by_name.get(cursor.spelling)
            new_functions.append(Function(
                name=cursor.spelling,
                qualified=_qualified(cursor),
                cls=cls, file=relpath, line=cursor.location.line,
                body=lowered.body if lowered else [],
                requires=list(old.requires) if old else [],
                params_text=old.params_text if old else "",
                return_type=cursor.result_type.spelling,
                is_public=old.is_public if old else True))
    except Exception:
        return False
    if not new_functions:
        return False
    model.functions = [f for f in model.functions if f.file != relpath]
    model.functions.extend(new_functions)
    model.frontend[relpath] = "clang"
    return True
