"""The frontend-neutral IR every pf_analyzer pass consumes.

Both frontends (clang_frontend via libclang, syntax_frontend via the
builtin tokenizer) lower C++ into this shape, so each semantic pass is
written exactly once and behaves identically whichever frontend parsed the
file. The IR is deliberately small: passes need function boundaries,
statement structure (for path/dominance reasoning), calls, declarations,
and lock/annotation sites — not a full AST.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

# ---------------------------------------------------------------------------
# Statements. A function body is a list of Stmt; compound structure is kept
# only where it changes path reasoning (branches, loops, switches, returns).
# ---------------------------------------------------------------------------


@dataclass
class Call:
    """One call site: `name(args)` or `recv.name(args)` / `recv->name(args)`.

    `name` is the unqualified callee (`ChargeLocked`), `qualified` keeps any
    explicit qualifier chain (`Status::OK`, `engine_->executor().Submit`),
    and `receiver` the textual receiver (`engine_->executor()`), empty for
    free calls. `arg_text` is the flattened argument source text.
    """

    name: str
    qualified: str
    receiver: str
    arg_text: str
    line: int


@dataclass
class Decl:
    """One local declaration: `Type name(init)` / `Type name = init`."""

    name: str
    type_text: str
    init_text: str
    line: int


@dataclass
class Stmt:
    """One statement node.

    kind is one of:
      'simple'   flat statement; carries calls/decls and the raw text
      'block'    `{ ... }` — children in `body`
      'if'       cond in `head_text`, then-branch in `body`, else in `orelse`
      'loop'     for/while/do — body in `body`, header text in `head_text`
      'switch'   body in `body` (case structure flattened)
      'return'   carries calls in the returned expression
      'break' / 'continue' / 'goto'
    """

    kind: str
    line: int
    head_text: str = ""
    text: str = ""
    calls: List[Call] = field(default_factory=list)
    decls: List[Decl] = field(default_factory=list)
    body: List["Stmt"] = field(default_factory=list)
    orelse: List["Stmt"] = field(default_factory=list)


@dataclass
class Function:
    """One function definition with a body."""

    name: str  # Unqualified: 'SubmitCompiled'.
    qualified: str  # 'pf::Session::SubmitCompiled'.
    cls: str  # Enclosing class ('Session'), '' for free functions.
    file: str  # Repo-relative path.
    line: int
    body: List[Stmt] = field(default_factory=list)
    # Capabilities from PF_REQUIRES(...) on the definition or a matching
    # declaration; lock names as written ('mutex_').
    requires: List[str] = field(default_factory=list)
    # Raw parameter list text (for ticket/capability-style heuristics).
    params_text: str = ""
    return_type: str = ""
    is_public: bool = True


@dataclass
class FieldInfo:
    """One class member variable, as parsed from a header or class body."""

    cls: str
    name: str
    type_text: str
    file: str
    line: int
    guarded_by: str = ""  # PF_GUARDED_BY(x) argument, if any.


@dataclass
class MethodDecl:
    """A method *declaration* (no body) — carries annotations from headers."""

    cls: str
    name: str
    file: str
    line: int
    return_type: str = ""
    requires: List[str] = field(default_factory=list)
    excludes: List[str] = field(default_factory=list)
    is_public: bool = True


@dataclass
class SourceModel:
    """Everything the frontends extracted from one set of files."""

    functions: List[Function] = field(default_factory=list)
    fields: List[FieldInfo] = field(default_factory=list)
    method_decls: List[MethodDecl] = field(default_factory=list)
    # file -> {line -> set(rule names allowed)} from pf:allow / lint:allow.
    allows: Dict[str, Dict[int, set]] = field(default_factory=dict)
    # file -> raw text (for text rules and reporting).
    file_text: Dict[str, str] = field(default_factory=dict)
    # Which frontend produced each file's functions: 'clang' or 'syntax'.
    frontend: Dict[str, str] = field(default_factory=dict)

    def fields_of(self, cls: str) -> List[FieldInfo]:
        return [f for f in self.fields if f.cls == cls]

    def find_field(self, name: str, cls: str = "") -> Optional[FieldInfo]:
        """Resolves a member name, preferring the given class, else any
        unique match across all parsed classes."""
        if cls:
            for f in self.fields:
                if f.cls == cls and f.name == name:
                    return f
        matches = [f for f in self.fields if f.name == name]
        if len(matches) == 1:
            return matches[0]
        return None


def walk_stmts(stmts):
    """Yields every Stmt in a subtree, depth-first, pre-order."""
    for s in stmts:
        yield s
        yield from walk_stmts(s.body)
        yield from walk_stmts(s.orelse)


def stmt_calls(stmts):
    """Yields every Call in a subtree."""
    for s in walk_stmts(stmts):
        yield from s.calls
