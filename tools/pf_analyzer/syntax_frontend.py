"""The builtin frontend: lowers C++ to the pass IR without libclang.

This is the fallback for hosts without clang python bindings (and the
engine behind --syntax-only). It is a structural parser, not a compiler:
it tracks namespace/class scopes, records fields and method declarations
(with PF_* annotations), and parses function bodies into the Stmt tree the
passes do path reasoning over. Lambda bodies are inlined into their
enclosing function — calls inside a lambda attach to the statement that
creates it, which is the conservative choice for dominance checks.
"""

from typing import Dict, List, Optional, Set, Tuple

from .ir import Call, Decl, FieldInfo, Function, MethodDecl, SourceModel, Stmt
from .lexer import tokenize

_KEYWORDS = {
    "if", "else", "while", "for", "do", "switch", "case", "default",
    "return", "break", "continue", "goto", "sizeof", "alignof", "decltype",
    "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
    "new", "delete", "throw", "try", "catch", "noexcept", "static_assert",
    "assert", "typedef", "using", "template", "typename", "operator",
    "co_return", "co_await", "co_yield", "alignas", "_Static_assert",
}

_NOT_FUNCTION_NAMES = _KEYWORDS | {
    "PF_GUARDED_BY", "PF_PT_GUARDED_BY", "PF_REQUIRES", "PF_EXCLUDES",
    "PF_ACQUIRE", "PF_RELEASE", "PF_TRY_ACQUIRE", "PF_ASSERT_CAPABILITY",
    "PF_RETURN_CAPABILITY", "PF_CAPABILITY", "PF_THREAD_ANNOTATION_",
    # Fundamental types: `std::function<void()>` must not read as `void(`.
    "void", "int", "bool", "char", "double", "float", "auto", "wchar_t",
    "char8_t", "char16_t", "char32_t",
}

_TYPE_KEYWORDS = {
    "const", "constexpr", "mutable", "static", "inline", "volatile",
    "virtual", "explicit", "friend", "unsigned", "signed", "long", "short",
    "extern", "thread_local", "register",
}


def _flatten(tokens) -> str:
    out = []
    for kind, text, _ in tokens:
        if kind == "pp":
            continue
        out.append(text)
    return " ".join(out)


def _match_forward(tokens, i, open_tok, close_tok):
    """tokens[i] == open_tok; returns index just past the matching close."""
    depth = 0
    n = len(tokens)
    while i < n:
        t = tokens[i][1]
        if t == open_tok:
            depth += 1
        elif t == close_tok:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


class _Parser:
    def __init__(self, relpath: str, text: str):
        self.relpath = relpath
        self.tokens, self.allows = tokenize(text)
        self.functions: List[Function] = []
        self.fields: List[FieldInfo] = []
        self.method_decls: List[MethodDecl] = []

    # -- scope walk ---------------------------------------------------------

    def parse(self):
        self._parse_scope(0, len(self.tokens), namespaces=[], cls="",
                          access_public=True)

    def _parse_scope(self, i, end, namespaces, cls, access_public):
        """Parses declarations in [i, end); returns index past `end`."""
        toks = self.tokens
        while i < end:
            kind, text, line = toks[i]
            if kind == "pp":
                i += 1
                continue
            if text == "}":
                return i + 1
            if text == ";":
                i += 1
                continue
            # Access specifiers inside a class body.
            if cls and text in ("public", "private", "protected") and \
                    i + 1 < end and toks[i + 1][1] == ":":
                access_public = text == "public"
                i += 2
                continue
            # Collect one declaration chunk up to `;` or a body `{`.
            chunk_start = i
            j = i
            saw_paren_group = False
            template_depth = 0
            while j < end:
                t = toks[j][1]
                k = toks[j][0]
                if k == "pp":
                    j += 1
                    continue
                if t == "template" and j + 1 < end and toks[j + 1][1] == "<":
                    # Skip the template parameter list wholesale.
                    depth = 0
                    j += 1
                    while j < end:
                        if toks[j][1] == "<":
                            depth += 1
                        elif toks[j][1] == ">":
                            depth -= 1
                            if depth == 0:
                                break
                        elif toks[j][1] == ">>":
                            depth -= 2
                            if depth <= 0:
                                break
                        j += 1
                    j += 1
                    continue
                if t == "(":
                    j = _match_forward(toks, j, "(", ")")
                    saw_paren_group = True
                    continue
                if t == "[":
                    j = _match_forward(toks, j, "[", "]")
                    continue
                if t in (";", "{", "}"):
                    break
                if t == "=" and j + 1 < end and toks[j + 1][1] == "{":
                    # Brace initializer at declaration scope: consume it as
                    # part of the chunk, then continue to the `;`.
                    j = _match_forward(toks, j + 1, "{", "}")
                    continue
                j += 1
            if j >= end:
                return end
            chunk = toks[chunk_start:j]
            t = toks[j][1]
            if t == "}":
                return j + 1
            if t == ";":
                self._handle_decl_chunk(chunk, cls, namespaces, access_public,
                                        saw_paren_group)
                i = j + 1
                continue
            # t == "{": what kind of block?
            words = [x[1] for x in chunk if x[0] == "id"]
            if "namespace" in words:
                name = words[-1] if words[-1] != "namespace" else ""
                close = self._parse_scope(j + 1, end, namespaces + [name],
                                          "", True)
                i = close
                continue
            if words[:1] == ["enum"]:
                i = _match_forward(toks, j, "{", "}")
                continue
            if self._is_class_chunk(chunk):
                cname = self._class_name(chunk)
                struct_like = "struct" in words
                close = self._parse_scope(j + 1, end, namespaces, cname,
                                          struct_like)
                i = close
                continue
            if saw_paren_group and self._looks_like_function(chunk):
                i = self._parse_function(chunk, j, end, namespaces, cls,
                                         access_public)
                continue
            # Unrecognized brace owner (array init, extern "C", ...): if it
            # carries an `=`, skip the initializer; else recurse
            # transparently so nothing inside is missed.
            if any(x[1] == "=" for x in chunk):
                i = _match_forward(toks, j, "{", "}")
            else:
                i = self._parse_scope(j + 1, end, namespaces, cls,
                                      access_public)

    # -- chunk classification -----------------------------------------------

    @staticmethod
    def _is_class_chunk(chunk) -> bool:
        ids = [x[1] for x in chunk if x[0] == "id"]
        if not ids or ids[0] not in ("class", "struct", "union"):
            # `typedef struct {...}` etc.
            if ids[:2] and ids[0] == "typedef" and ids[1] in ("struct", "union"):
                return True
            return False
        return True

    @staticmethod
    def _class_name(chunk) -> str:
        ids = [x for x in chunk if x[0] == "id"]
        name = ""
        skip_next = False
        for idx, (_, text, _) in enumerate(ids):
            if skip_next:
                skip_next = False
                continue
            if text in ("class", "struct", "union", "typedef", "final",
                        "alignas"):
                continue
            if text.startswith("PF_") or text.isupper():
                continue  # Attribute-like macro (PF_CAPABILITY("mutex")).
            name = text
            break
        # Stop at the base-clause colon: name precedes it anyway.
        return name

    @staticmethod
    def _looks_like_function(chunk) -> bool:
        """True when the chunk reads `...name(params) quals` — i.e. the
        last parenthesized group is attached to a plausible function name
        (or to a PF_/noexcept/const qualifier trailing one)."""
        # Find the token index of the last `(` group's opener at top level.
        name = _declarator_name(chunk)
        return name is not None and name not in _KEYWORDS


def _declarator_name(chunk) -> Optional[str]:
    """The function name of a `ret name(args) quals` chunk, or None.

    The FIRST plausible `id(` group wins: later groups belong to trailing
    annotation macros or a constructor's member-init list
    (`Session::Session(...) : engine_(engine), ...`), never the declarator.
    """
    i = 0
    n = len(chunk)
    while i < n:
        kind, text, _ = chunk[i]
        if text == "(":
            prev = None
            j = i - 1
            while j >= 0 and chunk[j][0] == "pp":
                j -= 1
            if j >= 0 and chunk[j][0] == "id":
                prev = chunk[j][1]
            if prev == "operator" or (prev and prev in _NOT_FUNCTION_NAMES):
                prev = None
            if prev:
                return prev
            i = _match_forward(chunk, i, "(", ")")
            continue
        i += 1
    return None


def _annotation_args(chunk, macro: str) -> List[str]:
    """Arguments of every `macro(...)` occurrence in a token chunk."""
    out = []
    i = 0
    n = len(chunk)
    while i < n:
        if chunk[i][0] == "id" and chunk[i][1] == macro and i + 1 < n and \
                chunk[i + 1][1] == "(":
            close = _match_forward(chunk, i + 1, "(", ")")
            arg = "".join(t for _, t, _ in chunk[i + 2 : close - 1])
            out.append(arg)
            i = close
            continue
        i += 1
    return out


class _BodyParser:
    """Parses one function body token range into a Stmt list."""

    def __init__(self, tokens):
        self.toks = tokens
        self.n = len(tokens)

    def parse_block(self, i) -> Tuple[List[Stmt], int]:
        """i points just past `{`; returns (stmts, index past `}`)."""
        stmts: List[Stmt] = []
        toks = self.toks
        while i < self.n:
            kind, text, line = toks[i]
            if kind == "pp":
                i += 1
                continue
            if text == "}":
                return stmts, i + 1
            if text == ";":
                i += 1
                continue
            if text == "{":
                body, i = self.parse_block(i + 1)
                stmts.append(Stmt("block", line, body=body))
                continue
            if text == "if":
                stmt, i = self._parse_if(i)
                stmts.append(stmt)
                continue
            if text in ("for", "while"):
                head_end = i + 1
                head = []
                if head_end < self.n and toks[head_end][1] == "(":
                    close = _match_forward(toks, head_end, "(", ")")
                    head = toks[head_end + 1 : close - 1]
                    head_end = close
                body, i = self._parse_substmt(head_end)
                s = Stmt("loop", line, head_text=_flatten(head), body=body)
                self._extract(head, s)
                stmts.append(s)
                continue
            if text == "do":
                body, i = self._parse_substmt(i + 1)
                # Consume `while (...);`
                if i < self.n and toks[i][1] == "while":
                    close = _match_forward(toks, i + 1, "(", ")")
                    head = toks[i + 2 : close - 1]
                    s = Stmt("loop", line, head_text=_flatten(head), body=body)
                    self._extract(head, s)
                    i = close
                    if i < self.n and toks[i][1] == ";":
                        i += 1
                else:
                    s = Stmt("loop", line, body=body)
                # A do-while body runs at least once: model as block + loop
                # so dominance treats the body as executed.
                stmts.append(Stmt("block", line, body=body))
                stmts.append(s)
                continue
            if text == "switch":
                close = _match_forward(toks, i + 1, "(", ")")
                head = toks[i + 2 : close - 1]
                body, i = self._parse_substmt(close)
                s = Stmt("switch", line, head_text=_flatten(head), body=body)
                self._extract(head, s)
                stmts.append(s)
                continue
            if text == "return":
                j = self._find_semi(i + 1)
                s = Stmt("return", line, text=_flatten(toks[i + 1 : j]))
                self._extract(toks[i + 1 : j], s)
                stmts.append(s)
                i = j + 1
                continue
            if text in ("break", "continue"):
                stmts.append(Stmt(text, line))
                i += 1
                continue
            if text in ("case", "default"):
                # Skip to the label colon; the statements follow normally.
                while i < self.n and toks[i][1] != ":":
                    i += 1
                i += 1
                continue
            if text in ("try", "catch", "else"):
                # `try {` / `catch (...) {` / stray else: treat the attached
                # block transparently.
                j = i + 1
                if j < self.n and toks[j][1] == "(":
                    j = _match_forward(toks, j, "(", ")")
                if j < self.n and toks[j][1] == "{":
                    body, i = self.parse_block(j + 1)
                    s = Stmt("block", line, body=body)
                    s.calls.append(Call(text, text, "", "", line))
                    stmts.append(s)
                else:
                    i = j
                continue
            # Simple statement.
            stmt, i = self._parse_simple(i)
            stmts.append(stmt)
        return stmts, i

    def _parse_if(self, i) -> Tuple[Stmt, int]:
        toks = self.toks
        line = toks[i][2]
        close = _match_forward(toks, i + 1, "(", ")")
        head = toks[i + 2 : close - 1]
        body, i = self._parse_substmt(close)
        s = Stmt("if", line, head_text=_flatten(head), body=body)
        self._extract(head, s)
        if i < self.n and toks[i][1] == "else":
            if i + 1 < self.n and toks[i + 1][1] == "if":
                nested, i = self._parse_if(i + 1)
                s.orelse = [nested]
            else:
                s.orelse, i = self._parse_substmt(i + 1)
        return s, i

    def _parse_substmt(self, i) -> Tuple[List[Stmt], int]:
        """One statement-or-block as a statement list."""
        toks = self.toks
        while i < self.n and toks[i][0] == "pp":
            i += 1
        if i >= self.n:
            return [], i
        if toks[i][1] == "{":
            return self.parse_block(i + 1)
        if toks[i][1] == ";":
            return [], i + 1
        if toks[i][1] in ("if",):
            s, i = self._parse_if(i)
            return [s], i
        if toks[i][1] == "return":
            j = self._find_semi(i + 1)
            s = Stmt("return", toks[i][2], text=_flatten(toks[i + 1 : j]))
            self._extract(toks[i + 1 : j], s)
            return [s], j + 1
        if toks[i][1] in ("for", "while", "switch", "do", "break", "continue"):
            # Recurse through parse_block machinery on a synthetic block.
            stmts, i = self._parse_bounded(i)
            return stmts, i
        s, i = self._parse_simple(i)
        return [s], i

    def _parse_bounded(self, i):
        """Parses exactly one structured statement starting at i by
        delegating to parse_block logic."""
        # Cheap trick: parse as if a block of one statement.
        toks = self.toks
        text = toks[i][1]
        if text in ("break", "continue"):
            j = i + 1
            if j < self.n and toks[j][1] == ";":
                j += 1
            return [Stmt(text, toks[i][2])], j
        # for/while/switch/do with a substatement:
        saved = []
        if text in ("for", "while", "switch"):
            close = _match_forward(toks, i + 1, "(", ")")
            head = toks[i + 2 : close - 1]
            body, j = self._parse_substmt(close)
            kind = "switch" if text == "switch" else "loop"
            s = Stmt(kind, toks[i][2], head_text=_flatten(head), body=body)
            self._extract(head, s)
            return [s], j
        if text == "do":
            body, j = self._parse_substmt(i + 1)
            if j < self.n and toks[j][1] == "while":
                close = _match_forward(toks, j + 1, "(", ")")
                j = close
                if j < self.n and toks[j][1] == ";":
                    j += 1
            return [Stmt("block", toks[i][2], body=body),
                    Stmt("loop", toks[i][2], body=body)], j
        return saved, i + 1

    def _find_semi(self, i) -> int:
        toks = self.toks
        depth = 0
        while i < self.n:
            t = toks[i][1]
            if t in ("(", "[", "{"):
                close = {"(": ")", "[": "]", "{": "}"}[t]
                i = _match_forward(toks, i, t, close)
                continue
            if t == ";" and depth == 0:
                return i
            if t == "}":
                return i  # Malformed; stop at scope end.
            i += 1
        return self.n

    def _parse_simple(self, i) -> Tuple[Stmt, int]:
        j = self._find_semi(i)
        toks = self.toks[i:j]
        line = self.toks[i][2] if i < self.n else 0
        s = Stmt("simple", line, text=_flatten(toks))
        self._extract(toks, s)
        self._extract_decl(toks, s)
        return s, j + 1

    # -- call / decl extraction ---------------------------------------------

    def _extract(self, toks, stmt: Stmt):
        """Extracts calls from a token run (including nested/lambda code)."""
        n = len(toks)
        for k in range(n - 1):
            kind, text, line = toks[k]
            if kind != "id" or toks[k + 1][1] != "(":
                continue
            if text in _NOT_FUNCTION_NAMES:
                continue
            # Backward scan for the qualifier/receiver chain.
            parts = [text]
            j = k - 1
            receiver_tokens: List[str] = []
            while j >= 1:
                sep = toks[j][1]
                if sep in ("::", ".", "->"):
                    prev_kind, prev_text, _ = toks[j - 1]
                    if prev_text == ")":
                        # Receiver ends in a call: skip back over the group.
                        depth = 0
                        jj = j - 1
                        while jj >= 0:
                            if toks[jj][1] == ")":
                                depth += 1
                            elif toks[jj][1] == "(":
                                depth -= 1
                                if depth == 0:
                                    break
                            jj -= 1
                        seg = "".join(t for _, t, _ in toks[max(jj - 1, 0) : j])
                        receiver_tokens.insert(0, seg)
                        parts.insert(0, seg + sep)
                        j = jj - 2
                        continue
                    if prev_kind == "id":
                        receiver_tokens.insert(0, prev_text + sep)
                        parts.insert(0, prev_text + sep)
                        j -= 2
                        continue
                break
            qualified = "".join(parts)
            receiver = "".join(receiver_tokens).rstrip(":.->")
            close = _match_forward(toks, k + 1, "(", ")")
            arg_text = " ".join(t for _, t, _ in toks[k + 2 : close - 1])
            stmt.calls.append(Call(text, qualified, receiver, arg_text, line))

    def _extract_decl(self, toks, stmt: Stmt):
        """Detects `Type name(init);` / `Type name = init;` declarations."""
        # Strip leading cv/storage keywords.
        i = 0
        n = len(toks)
        while i < n and toks[i][0] == "id" and toks[i][1] in _TYPE_KEYWORDS:
            i += 1
        # Type: (id ::)* id [<...>] [*&]*
        type_parts = []
        start = i
        while i < n:
            kind, text, _ = toks[i]
            if kind == "id" and text not in _KEYWORDS:
                type_parts.append(text)
                i += 1
                if i < n and toks[i][1] == "<":
                    close = self._match_angle(toks, i)
                    if close is None:
                        return
                    type_parts.append(
                        "<" + " ".join(t for _, t, _ in toks[i + 1 : close - 1]) + ">")
                    i = close
                if i < n and toks[i][1] == "::":
                    type_parts.append("::")
                    i += 1
                    continue
                break
            return
        while i < n and toks[i][1] in ("*", "&", "&&", "const"):
            type_parts.append(toks[i][1])
            i += 1
        if i >= n or toks[i][0] != "id" or len(type_parts) == 0:
            return
        name = toks[i][1]
        if name in _KEYWORDS:
            return
        i += 1
        if i >= n:
            init = ""
        elif toks[i][1] == "(":
            close = _match_forward(toks, i, "(", ")")
            init = " ".join(t for _, t, _ in toks[i + 1 : close - 1])
        elif toks[i][1] in ("=", "{"):
            init = " ".join(t for _, t, _ in toks[i + 1 :])
        else:
            return
        stmt.decls.append(
            Decl(name, " ".join(type_parts), init, toks[start][2]))

    @staticmethod
    def _match_angle(toks, i) -> Optional[int]:
        depth = 0
        n = len(toks)
        while i < n:
            t = toks[i][1]
            if t == "<":
                depth += 1
            elif t == ">":
                depth -= 1
                if depth == 0:
                    return i + 1
            elif t == ">>":
                depth -= 2
                if depth <= 0:
                    return i + 1
            elif t in (";", "{"):
                return None
            i += 1
        return None


# -- declaration handling ----------------------------------------------------


def _parser_handle_decl(self: _Parser, chunk, cls, namespaces, access_public,
                        saw_paren_group):
    if not chunk:
        return
    line = chunk[0][2]
    words = [x[1] for x in chunk if x[0] == "id"]
    if not words or words[0] in ("using", "typedef", "friend", "template"):
        return
    # A chunk whose only paren groups are annotation macros (e.g.
    # `Foo field_ PF_GUARDED_BY(mutex_);`) is a field, not a method decl.
    if saw_paren_group and _declarator_name(chunk) is not None:
        name = _declarator_name(chunk)
        if name and cls:
            requires = _annotation_args(chunk, "PF_REQUIRES")
            excludes = _annotation_args(chunk, "PF_EXCLUDES")
            ret = _return_type_text(chunk, name)
            self.method_decls.append(
                MethodDecl(cls, name, self.relpath, line, ret, requires,
                           excludes, access_public))
        return
    if cls:
        # Field: last id before `=`/`{`/PF_GUARDED_BY/`;` is the name.
        guarded = _annotation_args(chunk, "PF_GUARDED_BY")
        name = None
        type_parts = []
        stop = {"=", "{"}
        for kind, text, _ in chunk:
            if text in stop:
                break
            if kind == "id" and text == "PF_GUARDED_BY":
                break
            if kind == "id" and text not in _TYPE_KEYWORDS:
                if name is not None:
                    type_parts.append(name)
                name = text
            elif kind == "punct" and text in ("<", ">", "::", "*", "&", ","):
                if name is not None:
                    type_parts.append(name)
                    name = None
                type_parts.append(text)
        if name:
            self.fields.append(
                FieldInfo(cls, name, " ".join(type_parts), self.relpath,
                          line, guarded[0] if guarded else ""))


def _return_type_text(chunk, name: str) -> str:
    parts = []
    for kind, text, _ in chunk:
        if kind == "id" and text == name:
            break
        if kind == "pp":
            continue
        parts.append(text)
    return " ".join(parts)


def _parser_parse_function(self: _Parser, chunk, brace_i, end, namespaces,
                           cls, access_public):
    toks = self.tokens
    name = _declarator_name(chunk)
    line = chunk[0][2]
    # Explicit qualification in the declarator: `Type Cls::Name(...)`.
    decl_cls = cls
    for k in range(len(chunk) - 2):
        if chunk[k][0] == "id" and chunk[k + 1][1] == "::" and \
                chunk[k + 2][0] == "id" and chunk[k + 2][1] == name and \
                k + 3 < len(chunk) and chunk[k + 3][1] == "(":
            decl_cls = chunk[k][1]
    del end  # Unused; kept for signature symmetry.
    requires = _annotation_args(chunk, "PF_REQUIRES")
    # Parameter text: first top-level group following the name.
    params = ""
    for k in range(len(chunk) - 1):
        if chunk[k][0] == "id" and chunk[k][1] == name and \
                chunk[k + 1][1] == "(":
            close = _match_forward(chunk, k + 1, "(", ")")
            params = " ".join(t for _, t, _ in chunk[k + 2 : close - 1])
            break
    close = _match_forward(toks, brace_i, "{", "}")
    body_toks = toks[brace_i + 1 : close - 1]
    end_line = body_toks[-1][2] if body_toks else line
    parser = _BodyParser(body_toks + [("punct", "}", end_line)])
    stmts, _ = parser.parse_block(0)
    qualified = "::".join([n for n in namespaces if n] +
                          ([decl_cls] if decl_cls else []) + [name or "?"])
    fn = Function(
        name=name or "?", qualified=qualified, cls=decl_cls,
        file=self.relpath, line=line, body=stmts, requires=requires,
        params_text=params,
        return_type=_return_type_text(chunk, name or "?"),
        is_public=access_public)
    self.functions.append(fn)
    return close


_Parser._handle_decl_chunk = _parser_handle_decl
_Parser._parse_function = _parser_parse_function


def parse_file(relpath: str, text: str, model: SourceModel):
    """Parses one file into `model` (builtin frontend)."""
    p = _Parser(relpath, text)
    p.parse()
    model.functions.extend(p.functions)
    model.fields.extend(p.fields)
    model.method_decls.extend(p.method_decls)
    model.allows[relpath] = {k: set(v) for k, v in p.allows.items()}
    model.file_text[relpath] = text
    model.frontend[relpath] = "syntax"
