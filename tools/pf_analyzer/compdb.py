"""compile_commands.json handling and default target discovery.

With a compdb the analyzer sees exactly what the build compiles (and, in
clang mode, each file's real flags); without one it walks src/ the same
way the legacy linter did, so the tool works on a bare checkout.
"""

import json
import os
import shlex
from typing import Dict, List, Tuple

CXX_EXTENSIONS = (".cc", ".cpp", ".h", ".hpp")


def load_compdb(path: str, repo_root: str) -> Tuple[List[str], Dict[str, List[str]]]:
    """Returns (repo-relative file list, file -> clang args)."""
    with open(path, "r", encoding="utf-8") as f:
        entries = json.load(f)
    files: List[str] = []
    args: Dict[str, List[str]] = {}
    for e in entries:
        src = os.path.normpath(os.path.join(e.get("directory", ""), e["file"]))
        rel = os.path.relpath(src, repo_root).replace(os.sep, "/")
        if rel.startswith(".."):
            continue  # Outside the repo (system/generated files).
        if not rel.startswith("src/"):
            # The invariants govern library code; tests/bench/examples may
            # use ValueOrDie, .at(), etc. freely (same scope as the legacy
            # linter).
            continue
        if rel not in args:
            files.append(rel)
        if "arguments" in e:
            argv = list(e["arguments"])
        else:
            argv = shlex.split(e.get("command", ""))
        # Strip compiler, -c/-o pairs, and the input file itself: libclang
        # wants just the flags.
        flags: List[str] = []
        skip = False
        for a in argv[1:]:
            if skip:
                skip = False
                continue
            if a in ("-c",):
                continue
            if a == "-o":
                skip = True
                continue
            if os.path.normpath(os.path.join(e.get("directory", ""), a)) == src:
                continue
            flags.append(a)
        args[rel] = flags
    # Headers never appear in a compdb; include the tree's headers (so
    # annotations and fields from .h files are always in the model) and
    # CMakeLists.txt (the fast-math-fma rule scans build flags too).
    for rel in default_targets(repo_root):
        if (rel.endswith((".h", ".hpp")) or rel == "CMakeLists.txt") \
                and rel not in args:
            files.append(rel)
            args[rel] = []
    return files, args


def default_targets(repo_root: str) -> List[str]:
    targets: List[str] = []
    src = os.path.join(repo_root, "src")
    for dirpath, _, filenames in os.walk(src):
        for name in sorted(filenames):
            if name.endswith(CXX_EXTENSIONS):
                full = os.path.join(dirpath, name)
                targets.append(
                    os.path.relpath(full, repo_root).replace(os.sep, "/"))
    cml = os.path.join(repo_root, "CMakeLists.txt")
    if os.path.isfile(cml):
        targets.append("CMakeLists.txt")
    return sorted(targets)
