#!/usr/bin/env python3
"""Compatibility shim: the invariant rules now live in tools/pf_analyzer.

The six text rules (unseeded-randomness, fast-math-fma, naked-new-delete,
value-or-die, raw-mutex, no-abort) were folded into the pf_analyzer rule
registry (tools/pf_analyzer/passes/text_rules.py) alongside its semantic
passes, sharing one CLI, one findings format, and one suppression syntax
(`pf:allow(<rule>)`; the old `lint:allow` spelling still works).

This wrapper forwards to `pf_analyzer --regex-only` — exactly the old
behavior (text rules, no C++ parse, no libclang needed) with the old exit
codes (0 clean, 1 violations, 2 error) — so existing invocations and CI
steps keep working. Prefer calling the analyzer directly:

    python3 tools/pf_analyzer                  # all rules (semantic + text)
    python3 tools/pf_analyzer --regex-only     # what this shim runs
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from pf_analyzer.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(["--regex-only"] + sys.argv[1:]))
