#!/usr/bin/env python3
"""Repo-invariant linter: greppable contracts the toolchain cannot express.

Each rule enforces a correctness invariant of the library that neither the
compiler nor clang-tidy checks:

  unseeded-randomness   No rand()/srand()/std::random_device in src/: every
                        noise draw flows through pf::Rng with an explicit
                        seed, which is what makes releases bit-identical
                        under any thread count and reproducible per ticket.
  fast-math-fma         No -ffast-math / FMA contraction (std::fma,
                        __builtin_fma*, *_fmadd_*/_fmsub_* intrinsics) in
                        src/ or build flags: the matrix/factor kernels pin a
                        summation order (ascending-k, mul then add) so the
                        SIMD paths stay bit-identical to the scalar
                        reference (see common/matrix.h).
  naked-new-delete      No naked new/delete expressions outside
                        src/common/arena.cc: scratch goes through the Arena,
                        ownership through make_unique/make_shared. (A `new`
                        immediately wrapped by a factory needs an explicit
                        allow marker naming why make_unique cannot be used,
                        e.g. a private constructor.)
  value-or-die          No .ValueOrDie() in library code (src/): it aborts
                        the process, so a path reachable from user input
                        must propagate Status/Result instead. Tests, bench,
                        and examples may use it freely.
  raw-mutex             No std::mutex / std::lock_guard / std::unique_lock /
                        std::condition_variable outside
                        src/common/thread_annotations.h: all locking goes
                        through the capability-annotated pf::Mutex /
                        MutexLock / CondVar wrappers so the clang
                        -Wthread-safety leg can see every critical section.
  no-abort              No abort()/exit()/_Exit()/quick_exit() in src/:
                        every fallible serving path reports a typed Status
                        (DeadlineExceeded, Unavailable, Internal, ...) the
                        caller can handle or retry — a library that aborts
                        takes the whole serving process down with it.

A violating line can be exempted with an inline marker naming the rule and
a justification, which reviewers can grep for:

    std::random_device rd;  // lint:allow(unseeded-randomness): <why>

Usage:
    tools/lint_invariants.py               # lint the default tree
    tools/lint_invariants.py FILE...       # lint only FILE... (CI's
                                           # changed-files mode)
    tools/lint_invariants.py --list-rules

Exit status: 0 clean, 1 violations, 2 usage error.
"""

import argparse
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

ALLOW_RE = re.compile(r"lint:allow\(([a-z-]+)\)")

CXX_EXTENSIONS = (".cc", ".cpp", ".h", ".hpp")


def strip_code(line):
    """Removes string/char literals and // comments from one line.

    Block comments are handled by the caller (stateful across lines). The
    result keeps column positions approximately by replacing literals with
    spaces, which is enough for line-granularity reporting.
    """
    out = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == '"' or c == "'":
            quote = c
            out.append(" ")
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    i += 1
                    break
                i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break  # Rest of line is a comment.
        out.append(c)
        i += 1
    return "".join(out)


def code_lines(text):
    """Yields (lineno, raw_line, code_only_line) with comments/strings gone."""
    in_block_comment = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                yield lineno, raw, ""
                continue
            line = " " * (end + 2) + line[end + 2:]
            in_block_comment = False
        # Strip complete /* ... */ spans, then a trailing unterminated one.
        line = strip_code(line)
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block_comment = True
                break
            line = line[:start] + " " * (end + 2 - start) + line[end + 2:]
        yield lineno, raw, line


class Rule:
    def __init__(self, name, pattern, applies, why):
        self.name = name
        self.pattern = re.compile(pattern)
        self.applies = applies  # predicate over repo-relative path
        self.why = why


def in_src(path):
    return path.startswith("src/") and path.endswith(CXX_EXTENSIONS)


RULES = [
    Rule(
        "unseeded-randomness",
        r"std::random_device|\b(?:std::)?s?rand\s*\(",
        in_src,
        "determinism: noise must come from explicitly seeded pf::Rng",
    ),
    Rule(
        "fast-math-fma",
        r"-ffast-math|__builtin_fmaf?\b|std::fmaf?\b|_mm\d*_fn?m(?:add|sub)_|\bvfmaq?\b",
        lambda p: in_src(p) or os.path.basename(p) == "CMakeLists.txt",
        "pinned summation order: FMA contraction breaks SIMD/scalar "
        "bit-identity",
    ),
    Rule(
        "naked-new-delete",
        r"(?<![\w.:])new\s+[A-Za-z_:(]|(?<![\w.:])delete(?:\s*\[\s*\])?\s+[A-Za-z_(*]",
        lambda p: in_src(p) and p != "src/common/arena.cc",
        "ownership goes through Arena / make_unique / make_shared",
    ),
    Rule(
        "value-or-die",
        r"\.ValueOrDie\s*\(",
        in_src,
        "library paths reachable from user input must propagate "
        "Status/Result, not abort",
    ),
    Rule(
        "raw-mutex",
        r"std::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|lock_guard|"
        r"unique_lock|shared_lock|scoped_lock|condition_variable(?:_any)?)\b"
        r"|#\s*include\s*<(?:mutex|shared_mutex|condition_variable)>",
        lambda p: in_src(p) and p != "src/common/thread_annotations.h",
        "locking goes through the capability-annotated pf::Mutex wrappers "
        "(common/thread_annotations.h) so -Wthread-safety sees it",
    ),
    Rule(
        "no-abort",
        r"\b(?:std::)?(?:abort|_Exit|quick_exit)\s*\(|\b(?:std::)?exit\s*\(",
        in_src,
        "fallible serving paths return typed Status, never kill the process",
    ),
]


def default_targets():
    targets = []
    for base in ("src",):
        for dirpath, _, filenames in os.walk(os.path.join(REPO_ROOT, base)):
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    targets.append(os.path.join(dirpath, name))
    targets.append(os.path.join(REPO_ROOT, "CMakeLists.txt"))
    return targets


def lint_file(path, relpath, violations):
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        print(f"error: cannot read {relpath}: {e}", file=sys.stderr)
        return
    rules = [r for r in RULES if r.applies(relpath)]
    if not rules:
        return
    for lineno, raw, code in code_lines(text):
        allowed = set(ALLOW_RE.findall(raw))
        for rule in rules:
            if rule.name in allowed:
                continue
            if rule.pattern.search(code):
                violations.append(
                    f"{relpath}:{lineno}: [{rule.name}] {raw.strip()}\n"
                    f"    invariant: {rule.why}"
                )


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", help="files to lint (default: src/ + CMakeLists.txt)")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.name}: {rule.why}")
        return 0

    targets = [os.path.abspath(f) for f in args.files] or default_targets()
    violations = []
    for path in targets:
        relpath = os.path.relpath(path, REPO_ROOT).replace(os.sep, "/")
        if not os.path.isfile(path):
            continue  # Changed-files mode may name deleted files.
        lint_file(path, relpath, violations)

    if violations:
        print(f"lint_invariants: {len(violations)} violation(s)\n")
        for v in violations:
            print(v)
        print(
            "\nAn intentional exception needs an inline marker with a "
            "justification:\n    ... // lint:allow(<rule>): <why this is sound>"
        )
        return 1
    print(f"lint_invariants: clean ({len(targets)} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
